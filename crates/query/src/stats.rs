//! Serde-facing serving statistics for `--stats-json` and the bench
//! figures: per-query latency/answer records plus batch aggregates.

use crate::engine::{BatchReport, QueryResult};
use serde::{Deserialize, Serialize};

/// The nearest-rank `q`-quantile (0 ≤ q ≤ 1) of an unsorted sample, the
/// textbook definition: the value at 1-indexed rank `⌈q·N⌉` of the sorted
/// sample (rank clamped to `[1, N]`, so `q = 0` is the minimum and
/// `q = 1` the maximum). Returns 0 for an empty sample.
///
/// This is the one quantile definition shared by the batch report, the
/// server's live stats and the load generator — replacing the ad-hoc
/// index arithmetic each used to carry.
pub fn nearest_rank_quantile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One query's serving record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Admission ticket (submission index).
    pub id: u64,
    /// Query kind tag (`parents`/`distances`/`stcon`/`reachable`).
    pub kind: String,
    /// Wave source vertex.
    pub source: u32,
    /// Destination endpoint for point-to-point kinds.
    pub target: Option<u32>,
    /// Wave that served the query.
    pub wave: usize,
    /// Milliseconds from submission to the wave completing
    /// (`queue_ms` + dispatch wait + execution).
    pub latency_ms: f64,
    /// Milliseconds queued in the batcher, submission to wave seal.
    pub queue_ms: f64,
    /// Execution milliseconds of the wave that served this query.
    pub service_ms: f64,
    /// TEPS numerator (reachable adjacency entries).
    pub edges: u64,
    /// `s → t` hop distance for `stcon` queries that connected.
    pub distance: Option<u32>,
    /// Answer of `reachable` queries.
    pub reachable: Option<bool>,
    /// Vertices per hop depth of this search — comparable field-for-field
    /// with `BfsStats::depth_histogram` from `mcbfs bfs --stats-json`.
    pub depth_histogram: Vec<u64>,
}

/// Whole-batch serving summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Queries served.
    pub queries: usize,
    /// Waves executed.
    pub waves: usize,
    /// Admission cap (queries per wave).
    pub max_batch: usize,
    /// Worker threads per wave.
    pub threads: usize,
    /// Concurrent wave dispatchers.
    pub sockets: usize,
    /// `native` or `model`.
    pub mode: String,
    /// Batch makespan in seconds.
    pub seconds: f64,
    /// Sum of per-query TEPS numerators.
    pub total_edges: u64,
    /// Aggregate serving rate (`total_edges / seconds`).
    pub aggregate_teps: f64,
    /// Median per-query latency, milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_latency_ms: f64,
    /// 99.9th-percentile per-query latency, milliseconds.
    pub p999_latency_ms: f64,
    /// Per-query records in submission order.
    pub per_query: Vec<QueryStats>,
}

/// Flattens a finished [`BatchReport`] into its serializable summary.
/// `max_batch`/`threads`/`sockets`/`mode` echo the engine configuration
/// (the report itself doesn't retain it).
pub fn batch_stats(
    report: &BatchReport,
    max_batch: usize,
    threads: usize,
    sockets: usize,
    mode: &str,
) -> BatchStats {
    let per_query = report
        .outcomes
        .iter()
        .map(|o| {
            let (distance, reachable) = match o.result {
                QueryResult::StCon { distance } => (distance, None),
                QueryResult::Reachable { reachable } => (None, Some(reachable)),
                _ => (None, None),
            };
            QueryStats {
                id: o.id,
                kind: o.query.kind_name().to_string(),
                source: o.query.source(),
                target: o.query.target(),
                wave: o.wave,
                latency_ms: o.latency_seconds * 1e3,
                queue_ms: o.queue_seconds * 1e3,
                service_ms: o.service_seconds * 1e3,
                edges: o.edges,
                distance,
                reachable,
                depth_histogram: o.depth_histogram.clone(),
            }
        })
        .collect();
    BatchStats {
        queries: report.outcomes.len(),
        waves: report.waves.len(),
        max_batch,
        threads,
        sockets,
        mode: mode.to_string(),
        seconds: report.seconds,
        total_edges: report.total_edges(),
        aggregate_teps: report.aggregate_teps(),
        p50_latency_ms: report.latency_quantile(0.5) * 1e3,
        p99_latency_ms: report.latency_quantile(0.99) * 1e3,
        p999_latency_ms: report.latency_quantile(0.999) * 1e3,
        per_query,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Query, QueryEngine};
    use mcbfs_gen::prelude::*;

    #[test]
    fn nearest_rank_on_known_distributions() {
        // 1..=100: rank ⌈q·100⌉, 1-indexed — the textbook worked example.
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(nearest_rank_quantile(&v, 0.0), 1.0);
        assert_eq!(nearest_rank_quantile(&v, 0.5), 50.0);
        assert_eq!(nearest_rank_quantile(&v, 0.99), 99.0);
        assert_eq!(nearest_rank_quantile(&v, 0.999), 100.0);
        assert_eq!(nearest_rank_quantile(&v, 1.0), 100.0);
        // Order-independence: the helper sorts internally.
        let shuffled = [30.0, 10.0, 50.0, 20.0, 40.0];
        assert_eq!(nearest_rank_quantile(&shuffled, 0.5), 30.0);
        assert_eq!(nearest_rank_quantile(&shuffled, 0.25), 20.0);
        // Small-N tail behaviour: with 5 samples p99 is the maximum
        // (⌈0.99·5⌉ = 5), which ad-hoc (N-1)·q rounding gets wrong.
        assert_eq!(nearest_rank_quantile(&shuffled, 0.99), 50.0);
        // Singleton and empty.
        assert_eq!(nearest_rank_quantile(&[7.5], 0.999), 7.5);
        assert_eq!(nearest_rank_quantile(&[], 0.5), 0.0);
        // Duplicates collapse to the repeated value across the middle.
        let dup = [1.0, 2.0, 2.0, 2.0, 9.0];
        assert_eq!(nearest_rank_quantile(&dup, 0.4), 2.0);
        assert_eq!(nearest_rank_quantile(&dup, 0.79), 2.0);
        assert_eq!(nearest_rank_quantile(&dup, 0.81), 9.0);
    }

    #[test]
    fn per_query_timing_splits_queue_and_service() {
        let g = UniformBuilder::new(500, 6).seed(11).build();
        let queries: Vec<Query> = (0..6).map(|i| Query::Distances { root: i * 5 }).collect();
        let report = QueryEngine::new(&g).max_batch(3).execute(&queries);
        let stats = batch_stats(&report, 3, 1, 1, "native");
        for q in &stats.per_query {
            // Latency is measured from submission: it covers the queue
            // time and at least the serving wave's execution.
            assert!(q.latency_ms >= q.queue_ms, "{q:?}");
            assert!(q.latency_ms >= q.service_ms, "{q:?}");
            assert!(q.service_ms > 0.0, "{q:?}");
        }
        assert!(stats.p50_latency_ms <= stats.p99_latency_ms);
        assert!(stats.p99_latency_ms <= stats.p999_latency_ms);
    }

    #[test]
    fn stats_round_trip_through_json() {
        let g = UniformBuilder::new(600, 6).seed(8).build();
        let queries = vec![
            Query::Distances { root: 0 },
            Query::StCon { s: 0, t: 5 },
            Query::Reachable { from: 0, to: 9 },
        ];
        let report = QueryEngine::new(&g).threads(2).execute(&queries);
        let stats = batch_stats(&report, 64, 2, 1, "native");
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.per_query.len(), 3);
        assert_eq!(stats.per_query[0].kind, "distances");
        assert_eq!(stats.per_query[1].kind, "stcon");
        assert_eq!(stats.per_query[1].target, Some(5));
        assert!(stats.aggregate_teps > 0.0);
        assert!(stats.p50_latency_ms <= stats.p99_latency_ms);
        let json = serde_json::to_string(&stats).expect("serializes");
        let back: BatchStats = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, stats);
    }

    #[test]
    fn histograms_match_single_source_shape() {
        let g = UniformBuilder::new(400, 5).seed(3).build();
        let queries: Vec<Query> = (0..4).map(|i| Query::Distances { root: i * 3 }).collect();
        let report = QueryEngine::new(&g).execute(&queries);
        let stats = batch_stats(&report, 64, 1, 1, "native");
        for (q, s) in queries.iter().zip(&stats.per_query) {
            let solo = QueryEngine::new(&g).execute(&[*q]);
            assert_eq!(
                s.depth_histogram, solo.outcomes[0].depth_histogram,
                "histogram parity for {q:?}"
            );
        }
    }
}
