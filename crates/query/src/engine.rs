//! The batched query engine: admit heterogeneous queries, execute in waves.
//!
//! Queries are sealed into waves of up to [`MAX_SOURCES`] by the
//! [`QueryBatcher`], then each wave runs the bit-parallel multi-source
//! kernel ([`crate::msbfs`]) — or falls back to the paper's single-search
//! algorithms for singleton waves, where MS-BFS has no sharing to exploit.
//! Wave dispatch generalizes `core::throughput`: with `sockets > 1`,
//! concurrent dispatchers each drive their own wave on their own thread
//! group — the multi-instance regime of the paper's Fig. 10, with waves in
//! place of whole independent benchmark instances.
//!
//! Execution is mode-polymorphic like `BfsRunner`: native waves measure
//! wall-clock, model waves run the deterministic executor and price the
//! resulting profiles with a [`MachineModel`] — so a batched serving
//! experiment is exactly reproducible on this host.

use crate::batcher::{Admitted, BatcherOpts, QueryBatcher};
use crate::msbfs::{
    depth_histogram_of, ms_bfs_deterministic_raw, ms_bfs_raw, reachable_edges_of, MsBfsRun,
    RawMsBfs, MAX_SOURCES,
};
use mcbfs_core::runner::{Algorithm, BfsResult, BfsRunner, ExecMode};
use mcbfs_graph::csr::{CsrGraph, VertexId};
use mcbfs_graph::validate::depths_from_parents;
use mcbfs_sync::pool::scoped_run;
use mcbfs_sync::ticket::TicketLock;
use mcbfs_trace::{EventKind, SpanTimer, Trace};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One admitted query. `Copy + Default` so it can ride the
/// `sync::workq::ContinuousQueue` admission ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// Full BFS tree from `root` (parents + depths).
    Parents {
        /// Search root.
        root: VertexId,
    },
    /// Hop distances from `root` only.
    Distances {
        /// Search root.
        root: VertexId,
    },
    /// Shortest-path length between `s` and `t`, if connected.
    StCon {
        /// One endpoint (the wave source).
        s: VertexId,
        /// The other endpoint.
        t: VertexId,
    },
    /// Boolean reachability from `from` to `to`.
    Reachable {
        /// Source endpoint (the wave source).
        from: VertexId,
        /// Destination endpoint.
        to: VertexId,
    },
}

impl Default for Query {
    fn default() -> Self {
        Query::Distances { root: 0 }
    }
}

impl Query {
    /// The vertex whose search answers this query (its wave-slot source).
    pub fn source(&self) -> VertexId {
        match *self {
            Query::Parents { root } | Query::Distances { root } => root,
            Query::StCon { s, .. } => s,
            Query::Reachable { from, .. } => from,
        }
    }

    /// The destination endpoint, for the point-to-point query kinds.
    pub fn target(&self) -> Option<VertexId> {
        match *self {
            Query::StCon { t, .. } => Some(t),
            Query::Reachable { to, .. } => Some(to),
            _ => None,
        }
    }

    /// Short kind tag used in stats output.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Query::Parents { .. } => "parents",
            Query::Distances { .. } => "distances",
            Query::StCon { .. } => "stcon",
            Query::Reachable { .. } => "reachable",
        }
    }

    fn wants_parents(&self) -> bool {
        matches!(self, Query::Parents { .. })
    }
}

/// The answer to one [`Query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryResult {
    /// BFS tree (`parents[root] == root`, unreached = `UNVISITED`).
    Parents {
        /// Parent array.
        parents: Vec<VertexId>,
        /// Hop distances (`u32::MAX` unreached).
        depths: Vec<u32>,
    },
    /// Hop distances (`u32::MAX` unreached).
    Distances {
        /// Hop distances (`u32::MAX` unreached).
        depths: Vec<u32>,
    },
    /// Shortest-path length, `None` when disconnected.
    StCon {
        /// Hop distance `s → t` if connected.
        distance: Option<u32>,
    },
    /// Whether the destination is reachable.
    Reachable {
        /// True when a path exists.
        reachable: bool,
    },
}

impl QueryResult {
    /// The depth array, for the kinds that return one.
    pub fn depths(&self) -> Option<&[u32]> {
        match self {
            QueryResult::Parents { depths, .. } | QueryResult::Distances { depths } => Some(depths),
            _ => None,
        }
    }
}

/// One finished query with its serving metrics.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// Admission ticket (submission index).
    pub id: u64,
    /// The query as admitted.
    pub query: Query,
    /// Its answer.
    pub result: QueryResult,
    /// Index of the wave that served it.
    pub wave: usize,
    /// Seconds from **submission** to this query's wave completing:
    /// `queue_seconds` plus the dispatch wait and execution (wall-clock
    /// native, predicted in model mode).
    pub latency_seconds: f64,
    /// Seconds spent queued in the batcher, submission to wave seal.
    pub queue_seconds: f64,
    /// Execution seconds of the wave that served this query.
    pub service_seconds: f64,
    /// TEPS numerator: adjacency entries of every vertex this search
    /// reached.
    pub edges: u64,
    /// Vertices per hop depth of this search.
    pub depth_histogram: Vec<u64>,
}

/// Per-wave execution record.
#[derive(Clone, Debug)]
pub struct WaveStats {
    /// Index in wave order.
    pub wave: usize,
    /// Queries served by this wave.
    pub queries: usize,
    /// BFS levels the wave executed.
    pub levels: usize,
    /// Execution seconds of this wave alone.
    pub seconds: f64,
    /// Sum of the wave's per-query TEPS numerators.
    pub edges: u64,
    /// True when the singleton fallback algorithm ran instead of MS-BFS.
    pub fallback: bool,
    /// Dispatch slot (socket group) that executed the wave.
    pub socket: usize,
}

/// Everything the engine knows after serving one batch.
#[derive(Debug, Default)]
pub struct BatchReport {
    /// Per-query outcomes in submission order.
    pub outcomes: Vec<QueryOutcome>,
    /// Per-wave execution records in wave order.
    pub waves: Vec<WaveStats>,
    /// Makespan of the whole batch (wall-clock native; in model mode the
    /// slowest socket group's serial schedule, as in `core::throughput`).
    pub seconds: f64,
    /// Collected events when tracing was enabled (and compiled in).
    pub trace: Option<Trace>,
}

impl BatchReport {
    /// Sum of the per-query TEPS numerators.
    pub fn total_edges(&self) -> u64 {
        self.outcomes.iter().map(|o| o.edges).sum()
    }

    /// Aggregate serving rate: total reachable edges over makespan.
    pub fn aggregate_teps(&self) -> f64 {
        self.total_edges() as f64 / self.seconds.max(1e-9)
    }

    /// The nearest-rank `q`-quantile of per-query latency (0 ≤ q ≤ 1),
    /// seconds (see [`crate::stats::nearest_rank_quantile`]).
    pub fn latency_quantile(&self, q: f64) -> f64 {
        let lat: Vec<f64> = self.outcomes.iter().map(|o| o.latency_seconds).collect();
        crate::stats::nearest_rank_quantile(&lat, q)
    }
}

/// Kernel output of one wave before result assembly. The native dispatcher
/// collects these inside the serving clock and assembles outcomes after it
/// stops.
enum WaveKernel<'g> {
    /// A 2+-query wave served by the multi-source kernel.
    Ms(RawMsBfs<'g>),
    /// A singleton wave served by the fallback single-search algorithm.
    Single(BfsResult),
}

/// Builder-style batched query engine.
///
/// # Examples
///
/// ```
/// use mcbfs_gen::prelude::*;
/// use mcbfs_query::engine::{Query, QueryEngine, QueryResult};
///
/// let g = UniformBuilder::new(1_000, 8).seed(5).build();
/// let queries: Vec<Query> = (0..10).map(|i| Query::Distances { root: i * 7 }).collect();
/// let report = QueryEngine::new(&g).threads(2).execute(&queries);
/// assert_eq!(report.outcomes.len(), 10);
/// match &report.outcomes[0].result {
///     QueryResult::Distances { depths } => assert_eq!(depths[0], 0),
///     other => panic!("unexpected {other:?}"),
/// }
/// ```
pub struct QueryEngine<'g> {
    graph: &'g CsrGraph,
    threads: usize,
    max_batch: usize,
    sockets: usize,
    fallback: Algorithm,
    mode: ExecMode,
    trace: bool,
}

impl<'g> QueryEngine<'g> {
    /// An engine with defaults: 1 thread per wave, full-width batches,
    /// serial dispatch, hybrid singleton fallback, native execution, no
    /// tracing.
    pub fn new(graph: &'g CsrGraph) -> Self {
        Self {
            graph,
            threads: 1,
            max_batch: MAX_SOURCES,
            sockets: 1,
            fallback: Algorithm::hybrid(),
            mode: ExecMode::Native,
            trace: false,
        }
    }

    /// Worker threads per wave.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Maximum queries per wave (clamped to `1..=`[`MAX_SOURCES`]).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch.clamp(1, MAX_SOURCES);
        self
    }

    /// Concurrent wave dispatchers (socket groups), each `threads` wide —
    /// the throughput-mode generalization. Model mode schedules waves
    /// round-robin over the groups and reports the slowest group.
    pub fn sockets(mut self, sockets: usize) -> Self {
        self.sockets = sockets.max(1);
        self
    }

    /// Algorithm for singleton waves, where MS-BFS has nothing to share
    /// (default: the direction-optimizing hybrid; `MultiSocket` is the
    /// other sensible choice).
    pub fn fallback(mut self, fallback: Algorithm) -> Self {
        self.fallback = fallback;
        self
    }

    /// Selects native or model execution.
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables `mcbfs-trace` capture (`BatchAdmit`/`BatchExecute` spans plus
    /// the kernel's per-level spans).
    pub fn traced(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Serves one batch: admits `queries` through the batcher, executes the
    /// sealed waves, and reports per-query outcomes in submission order.
    pub fn execute(&self, queries: &[Query]) -> BatchReport {
        if self.trace {
            mcbfs_trace::start(mcbfs_trace::RunMeta {
                label: format!(
                    "n={} m={} queries={}",
                    self.graph.num_vertices(),
                    self.graph.num_edges(),
                    queries.len()
                ),
                algorithm: format!("batched-msbfs:{}", self.max_batch),
                mode: match self.mode {
                    ExecMode::Native => "native".to_string(),
                    ExecMode::Model(_) => "model".to_string(),
                },
                threads: self.threads,
            });
            mcbfs_trace::register_worker(0);
        }
        // The batch clock starts before admission so the reported makespan
        // bounds every per-query latency (which counts queue time).
        let start = Instant::now();
        let batcher = QueryBatcher::new(
            BatcherOpts {
                max_batch: self.max_batch,
                max_wait: Duration::ZERO,
            },
            queries.len().max(1),
        );
        for &q in queries {
            batcher.submit(q);
        }
        let waves = batcher.drain();
        let mut report = match &self.mode {
            ExecMode::Native => self.execute_native(&waves, start),
            ExecMode::Model(_) => self.execute_model(&waves),
        };
        report.outcomes.sort_by_key(|o| o.id);
        if self.trace {
            mcbfs_trace::flush_thread();
            report.trace = mcbfs_trace::finish();
        }
        report
    }

    /// Executes one externally-sealed wave — the serving path, where the
    /// caller owns the [`QueryBatcher`] and seals waves under its own
    /// deadline policy. Runs the exact same kernel and result assembly as
    /// the offline [`QueryEngine::execute`], so wire answers match offline
    /// answers by construction. `queue_seconds` flows from each
    /// [`Admitted::queued`]; outcomes come back in ticket order.
    pub fn execute_wave(&self, wave: &[Admitted]) -> BatchReport {
        let start = Instant::now();
        let waves = [wave.to_vec()];
        let mut report = match &self.mode {
            ExecMode::Native => self.execute_native(&waves, start),
            ExecMode::Model(_) => self.execute_model(&waves),
        };
        report.outcomes.sort_by_key(|o| o.id);
        report
    }

    /// Native dispatch: `sockets` concurrent dispatchers claim waves from a
    /// shared cursor (one dispatcher ≙ one socket group of
    /// `core::throughput`); latency is the query's batcher queue time plus
    /// wall-clock from batch start to its wave completing.
    fn execute_native(&self, waves: &[Vec<Admitted>], start: Instant) -> BatchReport {
        let cursor = AtomicUsize::new(0);
        // (wave, socket, latency, kernel): only kernels run inside the
        // serving clock; extraction and statistics happen after the join.
        type Collected<'g> = Vec<(usize, usize, f64, WaveKernel<'g>)>;
        let collected: TicketLock<Collected<'g>> = TicketLock::new(Vec::new());
        // Dispatch-relative clock for per-wave completion; `start` (the
        // batch epoch, pre-admission) bounds the reported makespan so
        // `latency_seconds <= seconds` holds even with queue time counted.
        let exec_start = Instant::now();
        scoped_run(self.sockets.min(waves.len().max(1)), None, |socket| {
            loop {
                let w = cursor.fetch_add(1, Ordering::Relaxed);
                if w >= waves.len() {
                    break;
                }
                let timer = SpanTimer::start();
                let kernel = self.run_wave_kernel(&waves[w]);
                timer.finish(EventKind::BatchExecute, waves[w].len() as u64);
                let latency = exec_start.elapsed().as_secs_f64();
                collected.lock().push((w, socket, latency, kernel));
            }
            mcbfs_trace::flush_thread();
        });
        let seconds = start.elapsed().as_secs_f64();
        let mut done = collected.into_inner();
        done.sort_by_key(|&(w, ..)| w);
        let mut report = BatchReport {
            seconds,
            ..BatchReport::default()
        };
        for (w, socket, latency, kernel) in done {
            let (mut outcomes, mut stats) = self.assemble_wave(w, &waves[w], kernel);
            stats.socket = socket;
            for o in &mut outcomes {
                o.service_seconds = stats.seconds;
                o.latency_seconds = o.queue_seconds + latency;
            }
            report.outcomes.extend(outcomes);
            report.waves.push(stats);
        }
        report
    }

    /// Model dispatch: waves run the deterministic executor in wave order
    /// (each priced inside [`QueryEngine::run_wave`]) and are scheduled
    /// round-robin onto the socket groups; a query's latency is its group's
    /// cumulative schedule.
    fn execute_model(&self, waves: &[Vec<Admitted>]) -> BatchReport {
        let mut socket_clock = vec![0.0f64; self.sockets];
        let mut report = BatchReport::default();
        for (w, wave) in waves.iter().enumerate() {
            let timer = SpanTimer::start();
            let (mut outcomes, mut stats) = self.run_wave(w, wave);
            timer.finish(EventKind::BatchExecute, wave.len() as u64);
            let socket = w % self.sockets;
            stats.socket = socket;
            socket_clock[socket] += stats.seconds;
            for o in &mut outcomes {
                // Model mode is deterministic: price only the modeled
                // schedule, not the wall-clock batcher queue time.
                o.queue_seconds = 0.0;
                o.service_seconds = stats.seconds;
                o.latency_seconds = socket_clock[socket];
            }
            report.outcomes.extend(outcomes);
            report.waves.push(stats);
        }
        report.seconds = socket_clock.iter().fold(0.0, |a, &b| a.max(b));
        report
    }

    /// Executes one sealed wave: MS-BFS for 2+ queries, the fallback
    /// algorithm for singletons.
    fn run_wave(&self, w: usize, wave: &[Admitted]) -> (Vec<QueryOutcome>, WaveStats) {
        let kernel = self.run_wave_kernel(wave);
        self.assemble_wave(w, wave, kernel)
    }

    /// The timed part of a wave: just the traversal, no result extraction.
    fn run_wave_kernel(&self, wave: &[Admitted]) -> WaveKernel<'g> {
        if wave.len() == 1 {
            let result = BfsRunner::new(self.graph)
                .algorithm(self.fallback)
                .threads(self.threads)
                .mode(self.mode.clone())
                .run(wave[0].query.source());
            return WaveKernel::Single(result);
        }
        let sources: Vec<VertexId> = wave.iter().map(|a| a.query.source()).collect();
        let record_parents = wave.iter().any(|a| a.query.wants_parents());
        WaveKernel::Ms(match &self.mode {
            ExecMode::Native => ms_bfs_raw(self.graph, &sources, self.threads, record_parents),
            ExecMode::Model(_) => {
                ms_bfs_deterministic_raw(self.graph, &sources, self.threads, record_parents)
            }
        })
    }

    /// The untimed part: grid extraction, per-query answers, statistics.
    fn assemble_wave(
        &self,
        w: usize,
        wave: &[Admitted],
        kernel: WaveKernel<'g>,
    ) -> (Vec<QueryOutcome>, WaveStats) {
        match kernel {
            WaveKernel::Single(r) => self.assemble_singleton(w, wave[0], r),
            WaveKernel::Ms(raw) => {
                let native_seconds = raw.seconds;
                let run = raw.finish();
                let seconds = match &self.mode {
                    ExecMode::Native => native_seconds,
                    ExecMode::Model(model) => model.predict(&run.profile).seconds,
                };
                self.assemble(w, wave, run, seconds)
            }
        }
    }

    fn assemble_singleton(
        &self,
        w: usize,
        admitted: Admitted,
        r: BfsResult,
    ) -> (Vec<QueryOutcome>, WaveStats) {
        let Admitted { id, query, queued } = admitted;
        let depths = depths_from_parents(&r.parents);
        let edges = reachable_edges_of(self.graph, &depths);
        let outcome = QueryOutcome {
            id,
            query,
            result: result_for(query, depths, || r.parents.clone()),
            wave: w,
            latency_seconds: 0.0,
            queue_seconds: queued.as_secs_f64(),
            service_seconds: 0.0,
            edges,
            depth_histogram: r.stats.depth_histogram.clone(),
        };
        let stats = WaveStats {
            wave: w,
            queries: 1,
            levels: r.stats.levels as usize,
            seconds: r.stats.seconds,
            edges,
            fallback: true,
            socket: 0,
        };
        (vec![outcome], stats)
    }

    fn assemble(
        &self,
        w: usize,
        wave: &[Admitted],
        run: MsBfsRun,
        seconds: f64,
    ) -> (Vec<QueryOutcome>, WaveStats) {
        let MsBfsRun {
            depths,
            mut parents,
            levels,
            ..
        } = run;
        let mut wave_edges = 0u64;
        let outcomes: Vec<QueryOutcome> = wave
            .iter()
            .zip(depths)
            .enumerate()
            .map(|(slot, (&Admitted { id, query, queued }, depths))| {
                let edges = reachable_edges_of(self.graph, &depths);
                wave_edges += edges;
                let depth_histogram = depth_histogram_of(&depths);
                let result = result_for(query, depths, || {
                    std::mem::take(&mut parents.as_mut().expect("parents recorded")[slot])
                });
                QueryOutcome {
                    id,
                    query,
                    result,
                    wave: w,
                    latency_seconds: 0.0,
                    queue_seconds: queued.as_secs_f64(),
                    service_seconds: 0.0,
                    edges,
                    depth_histogram,
                }
            })
            .collect();
        let stats = WaveStats {
            wave: w,
            queries: wave.len(),
            levels,
            seconds,
            edges: wave_edges,
            fallback: false,
            socket: 0,
        };
        (outcomes, stats)
    }
}

/// Projects one search's depth array (and lazily its parent array) onto the
/// query kind's answer.
fn result_for(
    query: Query,
    depths: Vec<u32>,
    parents: impl FnOnce() -> Vec<VertexId>,
) -> QueryResult {
    match query {
        Query::Parents { .. } => QueryResult::Parents {
            parents: parents(),
            depths,
        },
        Query::Distances { .. } => QueryResult::Distances { depths },
        Query::StCon { t, .. } => QueryResult::StCon {
            distance: (depths[t as usize] != u32::MAX).then(|| depths[t as usize]),
        },
        Query::Reachable { to, .. } => QueryResult::Reachable {
            reachable: depths[to as usize] != u32::MAX,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcbfs_gen::prelude::*;
    use mcbfs_graph::validate::{sequential_levels, validate_bfs_tree};
    use mcbfs_machine::model::MachineModel;

    fn graph() -> CsrGraph {
        RmatBuilder::new(9, 8).seed(21).build()
    }

    #[test]
    fn heterogeneous_batch_answers_every_kind() {
        let g = graph();
        let levels0 = sequential_levels(&g, 0);
        let far = levels0
            .iter()
            .position(|&d| d != u32::MAX && d >= 2)
            .unwrap() as VertexId;
        let unreached = levels0
            .iter()
            .position(|&d| d == u32::MAX)
            .map(|v| v as VertexId);
        let mut queries = vec![
            Query::Parents { root: 0 },
            Query::Distances { root: 3 },
            Query::StCon { s: 0, t: far },
            Query::Reachable { from: 0, to: far },
        ];
        if let Some(u) = unreached {
            queries.push(Query::Reachable { from: 0, to: u });
        }
        let report = QueryEngine::new(&g).threads(2).execute(&queries);
        assert_eq!(report.outcomes.len(), queries.len());
        match &report.outcomes[0].result {
            QueryResult::Parents { parents, depths } => {
                validate_bfs_tree(&g, 0, parents).expect("valid tree");
                assert_eq!(depths, &levels0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &report.outcomes[1].result {
            QueryResult::Distances { depths } => assert_eq!(depths, &sequential_levels(&g, 3)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            report.outcomes[2].result,
            QueryResult::StCon {
                distance: Some(levels0[far as usize]),
            }
        );
        assert_eq!(
            report.outcomes[3].result,
            QueryResult::Reachable { reachable: true }
        );
        if unreached.is_some() {
            assert_eq!(
                report.outcomes[4].result,
                QueryResult::Reachable { reachable: false }
            );
        }
        assert!(report.aggregate_teps() > 0.0);
        assert!(report.seconds > 0.0);
    }

    #[test]
    fn singleton_batch_uses_fallback() {
        let g = graph();
        let report = QueryEngine::new(&g)
            .threads(2)
            .execute(&[Query::Distances { root: 5 }]);
        assert_eq!(report.waves.len(), 1);
        assert!(report.waves[0].fallback);
        assert_eq!(
            report.outcomes[0].result.depths().unwrap(),
            &sequential_levels(&g, 5)[..]
        );
    }

    #[test]
    fn wave_splitting_respects_max_batch() {
        let g = graph();
        let queries: Vec<Query> = (0..10).map(|i| Query::Distances { root: i }).collect();
        let report = QueryEngine::new(&g).max_batch(4).execute(&queries);
        assert_eq!(
            report.waves.iter().map(|w| w.queries).collect::<Vec<_>>(),
            vec![4, 4, 2]
        );
        // The trailing singleton rule only applies to waves of exactly 1.
        assert!(report.waves.iter().all(|w| !w.fallback));
        // Outcomes come back in submission order regardless of wave.
        let ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn model_mode_is_deterministic_and_matches_native_depths() {
        let g = graph();
        let queries: Vec<Query> = (0..7).map(|i| Query::Distances { root: i * 31 }).collect();
        let model = || ExecMode::model(MachineModel::nehalem_ep());
        let native = QueryEngine::new(&g).threads(2).execute(&queries);
        let a = QueryEngine::new(&g)
            .threads(2)
            .mode(model())
            .execute(&queries);
        let b = QueryEngine::new(&g)
            .threads(2)
            .mode(model())
            .execute(&queries);
        assert_eq!(a.seconds, b.seconds);
        assert!(a.seconds > 0.0);
        for ((na, ma), mb) in native.outcomes.iter().zip(&a.outcomes).zip(&b.outcomes) {
            assert_eq!(ma.result, mb.result);
            assert_eq!(na.result.depths(), ma.result.depths());
            assert_eq!(ma.latency_seconds, mb.latency_seconds);
        }
    }

    #[test]
    fn multi_socket_dispatch_serves_all_waves() {
        let g = graph();
        let queries: Vec<Query> = (0..12).map(|i| Query::Distances { root: i * 17 }).collect();
        let report = QueryEngine::new(&g)
            .max_batch(3)
            .sockets(2)
            .execute(&queries);
        assert_eq!(report.waves.len(), 4);
        assert_eq!(report.outcomes.len(), 12);
        for o in &report.outcomes {
            assert_eq!(
                o.result.depths().unwrap(),
                &sequential_levels(&g, o.query.source())[..],
                "query {:?}",
                o.query
            );
            assert!(o.latency_seconds > 0.0 && o.latency_seconds <= report.seconds + 1e-9);
        }
        // Model-mode round-robin: slowest socket group bounds the makespan.
        let m = QueryEngine::new(&g)
            .max_batch(3)
            .sockets(2)
            .mode(ExecMode::model(MachineModel::nehalem_ep()))
            .execute(&queries);
        let per_socket: Vec<f64> = (0..2)
            .map(|s| {
                m.waves
                    .iter()
                    .filter(|w| w.socket == s)
                    .map(|w| w.seconds)
                    .sum()
            })
            .collect();
        let slowest = per_socket.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!((m.seconds - slowest).abs() < 1e-12);
    }

    #[test]
    fn latency_quantiles_and_empty_batch() {
        let g = graph();
        let empty = QueryEngine::new(&g).execute(&[]);
        assert_eq!(empty.outcomes.len(), 0);
        assert_eq!(empty.latency_quantile(0.5), 0.0);
        assert_eq!(empty.aggregate_teps(), 0.0);

        let queries: Vec<Query> = (0..5).map(|i| Query::Distances { root: i }).collect();
        let report = QueryEngine::new(&g).max_batch(2).execute(&queries);
        let p0 = report.latency_quantile(0.0);
        let p100 = report.latency_quantile(1.0);
        assert!(p0 > 0.0 && p0 <= report.latency_quantile(0.5));
        assert!(report.latency_quantile(0.5) <= p100);
        assert!(p100 <= report.seconds + 1e-9);
    }

    #[test]
    fn traced_batch_records_admit_and_execute_spans() {
        let g = graph();
        let queries: Vec<Query> = (0..6).map(|i| Query::Distances { root: i }).collect();
        let report = QueryEngine::new(&g)
            .max_batch(3)
            .traced(true)
            .execute(&queries);
        if cfg!(feature = "trace") {
            let trace = report.trace.expect("trace collected");
            let count = |kind: EventKind| {
                trace
                    .threads
                    .iter()
                    .flat_map(|t| &t.events)
                    .filter(|e| e.kind == kind)
                    .count()
            };
            assert_eq!(count(EventKind::BatchAdmit), 2);
            assert_eq!(count(EventKind::BatchExecute), 2);
            assert!(count(EventKind::Level) > 0, "kernel level spans recorded");
        } else {
            assert!(report.trace.is_none());
        }
    }
}
