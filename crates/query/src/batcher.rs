//! Admission control: collect submitted queries into waves.
//!
//! The serving loop's contract is the classic batching trade-off — wait a
//! little to fill a wide wave (throughput), but never hold a query longer
//! than `max_wait` (latency). Pending queries live in a
//! [`ContinuousQueue`] — the bounded ring variant of the fetch-add frontier
//! array the BFS levels use — so submission from concurrent producers is
//! one bounded ticket reservation, sealing a wave is one chunked pop, and
//! the ticket **is** the submission index: waves preserve strict FIFO
//! ticket order by construction, across any producer interleaving.
//!
//! Built for continuous serving: the ring is bounded, [`QueryBatcher::try_submit`]
//! reports `Overloaded` instead of growing without limit (the server's load
//! shedding), every pending query carries its submission timestamp (so the
//! scheduler can close waves on an age deadline and report queue time
//! separately from service time), and [`QueryBatcher::close`] drains-then-stops
//! for graceful shutdown.

use crate::engine::Query;
use crate::msbfs::MAX_SOURCES;
use mcbfs_sync::workq::{ContinuousQueue, PushError};
use mcbfs_trace::{EventKind, TraceEvent};
use std::time::{Duration, Instant};

/// Admission policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatcherOpts {
    /// Seal a wave as soon as this many queries are pending (clamped to
    /// `1..=`[`MAX_SOURCES`]).
    pub max_batch: usize,
    /// Seal a partial wave once its oldest query has waited this long.
    pub max_wait: Duration,
}

impl Default for BatcherOpts {
    fn default() -> Self {
        Self {
            max_batch: MAX_SOURCES,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// Pending depth reached the batcher's capacity; the caller should
    /// shed the query with an explicit reply, never drop it silently.
    Overloaded,
    /// The batcher is draining for shutdown.
    Closed,
}

/// One queued query. `Copy + Default` so it can ride the
/// `sync::workq::ContinuousQueue` admission ring.
#[derive(Clone, Copy, Debug, Default)]
struct Pending {
    query: Query,
    /// Submission time, nanoseconds since the batcher's epoch.
    submit_ns: u64,
}

/// One query sealed into a wave, with its admission metadata.
#[derive(Clone, Copy, Debug)]
pub struct Admitted {
    /// Admission ticket (dense from 0 — also the submission index).
    pub id: u64,
    /// The query as admitted.
    pub query: Query,
    /// Time the query spent queued, submission to wave seal.
    pub queued: Duration,
}

/// Collects concurrently-submitted queries and seals them into waves of at
/// most `max_batch`, in strict submission (ticket) order.
pub struct QueryBatcher {
    queue: ContinuousQueue<Pending>,
    opts: BatcherOpts,
    /// Clock origin for the per-query submission timestamps.
    epoch: Instant,
}

impl QueryBatcher {
    /// A batcher whose pending depth is bounded by `capacity` (the
    /// admission-control high-water mark; submissions beyond it report
    /// [`AdmitError::Overloaded`]).
    pub fn new(opts: BatcherOpts, capacity: usize) -> Self {
        let opts = BatcherOpts {
            max_batch: opts.max_batch.clamp(1, MAX_SOURCES),
            ..opts
        };
        Self {
            queue: ContinuousQueue::with_capacity(capacity.max(1)),
            opts,
            epoch: Instant::now(),
        }
    }

    /// The effective (clamped) admission policy.
    pub fn opts(&self) -> BatcherOpts {
        self.opts
    }

    /// Submits one query, returning its admission ticket (sequential from
    /// 0 — also its index in the submission order), or the reason it was
    /// rejected. Rejection is a normal serving outcome (shed or draining),
    /// never a panic.
    pub fn try_submit(&self, query: Query) -> Result<u64, AdmitError> {
        let pending = Pending {
            query,
            submit_ns: self.epoch.elapsed().as_nanos() as u64,
        };
        self.queue.try_push(pending).map_err(|e| match e {
            PushError::Full => AdmitError::Overloaded,
            PushError::Closed => AdmitError::Closed,
        })
    }

    /// Submits one query, panicking on rejection — for offline batch
    /// callers that sized the batcher to their query set and never close
    /// it mid-run.
    pub fn submit(&self, query: Query) -> u64 {
        self.try_submit(query)
            .expect("batcher sized for the submission set and not closed")
    }

    /// Queries submitted but not yet sealed into a wave.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total queries ever admitted (the next ticket to be issued).
    pub fn submitted(&self) -> u64 {
        self.queue.tickets_issued()
    }

    /// Age of the oldest still-pending query, or `None` when drained.
    pub fn oldest_age(&self) -> Option<Duration> {
        let (_, front) = self.queue.peek()?;
        Some(
            self.epoch
                .elapsed()
                .saturating_sub(Duration::from_nanos(front.submit_ns)),
        )
    }

    /// True when the policy says a wave should be sealed now: a full batch
    /// is pending, or a partial one has aged past `max_wait` (the
    /// continuous-batching close condition — whichever fires first).
    pub fn ready(&self) -> bool {
        let pending = self.pending();
        if pending >= self.opts.max_batch {
            return true;
        }
        pending > 0
            && self
                .oldest_age()
                .is_some_and(|age| age >= self.opts.max_wait)
    }

    /// Seals and returns the next wave (up to `max_batch` queries in
    /// strict ticket order), or `None` when nothing is pending. Records a
    /// [`EventKind::BatchAdmit`] span covering the oldest query's wait when
    /// a trace session is active.
    pub fn take_wave(&self) -> Option<Vec<Admitted>> {
        let mut chunk: Vec<(u64, Pending)> = Vec::with_capacity(self.opts.max_batch);
        if self.queue.pop_chunk(&mut chunk, self.opts.max_batch) == 0 {
            return None;
        }
        let sealed_ns = self.epoch.elapsed().as_nanos() as u64;
        let wave: Vec<Admitted> = chunk
            .into_iter()
            .map(|(id, p)| Admitted {
                id,
                query: p.query,
                queued: Duration::from_nanos(sealed_ns.saturating_sub(p.submit_ns)),
            })
            .collect();
        if mcbfs_trace::enabled() {
            // Backdate the span to the first admission so the trace shows
            // the true batching delay, not just the seal call.
            let now = mcbfs_trace::now_ns();
            let dur = wave[0].queued.as_nanos() as u64;
            mcbfs_trace::inject(
                0,
                vec![TraceEvent {
                    start_ns: now.saturating_sub(dur),
                    dur_ns: dur,
                    kind: EventKind::BatchAdmit,
                    arg: wave.len() as u64,
                }],
            );
        }
        Some(wave)
    }

    /// Seals everything pending into consecutive waves (a flush — ignores
    /// `max_wait`).
    pub fn drain(&self) -> Vec<Vec<Admitted>> {
        let mut waves = Vec::new();
        while let Some(wave) = self.take_wave() {
            waves.push(wave);
        }
        waves
    }

    /// Stops admitting; pending queries remain sealable. The shutdown
    /// handshake is close → drain → exit.
    pub fn close(&self) {
        self.queue.close();
    }

    /// `true` once [`QueryBatcher::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.queue.is_closed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(root: u32) -> Query {
        Query::Distances { root }
    }

    fn ids(waves: &[Vec<Admitted>]) -> Vec<u64> {
        waves.iter().flatten().map(|a| a.id).collect()
    }

    #[test]
    fn seals_in_submission_order_with_max_batch() {
        let b = QueryBatcher::new(
            BatcherOpts {
                max_batch: 3,
                max_wait: Duration::from_secs(60),
            },
            10,
        );
        for i in 0..7 {
            assert_eq!(b.submit(q(i)), i as u64);
        }
        assert!(b.ready(), "full batch pending");
        let waves = b.drain();
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0].len(), 3);
        assert_eq!(waves[2].len(), 1);
        assert_eq!(ids(&waves), (0..7).collect::<Vec<_>>());
        assert_eq!(b.pending(), 0);
        assert!(b.take_wave().is_none());
    }

    #[test]
    fn partial_wave_ready_only_after_max_wait() {
        let b = QueryBatcher::new(
            BatcherOpts {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
            },
            4,
        );
        assert!(!b.ready(), "empty batcher never ready");
        b.submit(q(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.ready(), "aged partial wave is ready");
        let wave = b.take_wave().unwrap();
        assert_eq!(wave.len(), 1);
        assert!(
            wave[0].queued >= Duration::from_millis(2),
            "queued {:?} under the sleep",
            wave[0].queued
        );
        assert!(!b.ready());
    }

    #[test]
    fn max_batch_clamped_to_kernel_width() {
        let b = QueryBatcher::new(
            BatcherOpts {
                max_batch: 1000,
                max_wait: Duration::ZERO,
            },
            128,
        );
        assert_eq!(b.opts().max_batch, MAX_SOURCES);
        for i in 0..80 {
            b.submit(q(i));
        }
        let waves = b.drain();
        assert_eq!(waves[0].len(), MAX_SOURCES);
        assert_eq!(waves[1].len(), 80 - MAX_SOURCES);
    }

    #[test]
    fn bounded_admission_sheds_then_recovers() {
        let b = QueryBatcher::new(BatcherOpts::default(), 2);
        assert_eq!(b.try_submit(q(0)), Ok(0));
        assert_eq!(b.try_submit(q(1)), Ok(1));
        assert_eq!(b.try_submit(q(2)), Err(AdmitError::Overloaded));
        let wave = b.take_wave().unwrap();
        assert_eq!(wave.len(), 2);
        // Depth freed: admission resumes with the next dense ticket.
        assert_eq!(b.try_submit(q(3)), Ok(2));
        assert_eq!(b.submitted(), 3);
    }

    #[test]
    fn close_drains_then_rejects() {
        let b = QueryBatcher::new(BatcherOpts::default(), 8);
        b.submit(q(0));
        b.close();
        assert!(b.is_closed());
        assert_eq!(b.try_submit(q(1)), Err(AdmitError::Closed));
        assert_eq!(b.take_wave().unwrap().len(), 1);
        assert!(b.take_wave().is_none());
    }

    #[test]
    fn reusable_after_drain_to_empty() {
        // Regression: the previous SharedQueue-backed batcher lost queries
        // submitted after a drain had overshot the dequeue cursor.
        let b = QueryBatcher::new(BatcherOpts::default(), 8);
        b.submit(q(0));
        assert_eq!(b.drain().len(), 1);
        assert!(b.take_wave().is_none());
        b.submit(q(1));
        let waves = b.drain();
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0][0].id, 1);
        assert_eq!(
            waves[0][0].query,
            Query::Distances { root: 1 },
            "post-drain submission must not be lost"
        );
    }

    #[test]
    fn concurrent_submission_loses_nothing_and_stays_fifo() {
        let b = QueryBatcher::new(BatcherOpts::default(), 400);
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = &b;
                s.spawn(move || {
                    for i in 0..100 {
                        b.submit(q(t * 100 + i));
                    }
                });
            }
        });
        let waves = b.drain();
        // Tickets are dense, and waves preserve strict ticket order even
        // under concurrent submission — no sort needed.
        assert_eq!(ids(&waves), (0..400).collect::<Vec<_>>());
    }
}
