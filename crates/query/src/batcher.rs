//! Admission control: collect submitted queries into waves.
//!
//! The serving loop's contract is the classic batching trade-off — wait a
//! little to fill a wide wave (throughput), but never hold a query longer
//! than `max_wait` (latency). Pending queries live in a
//! [`SharedQueue`] — the same fetch-add frontier array the BFS levels use —
//! so submission from concurrent producers is one cursor reservation, and
//! sealing a wave is one `take_chunk`.

use crate::engine::Query;
use crate::msbfs::MAX_SOURCES;
use mcbfs_sync::ticket::TicketLock;
use mcbfs_sync::workq::SharedQueue;
use mcbfs_trace::{EventKind, TraceEvent};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Admission policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatcherOpts {
    /// Seal a wave as soon as this many queries are pending (clamped to
    /// `1..=`[`MAX_SOURCES`]).
    pub max_batch: usize,
    /// Seal a partial wave once its oldest query has waited this long.
    pub max_wait: Duration,
}

impl Default for BatcherOpts {
    fn default() -> Self {
        Self {
            max_batch: MAX_SOURCES,
            max_wait: Duration::from_millis(2),
        }
    }
}

/// One queued query with its submission ticket.
#[derive(Clone, Copy, Debug, Default)]
struct Pending {
    id: u64,
    query: Query,
}

/// Collects concurrently-submitted queries and seals them into waves of at
/// most `max_batch`, in submission order.
pub struct QueryBatcher {
    queue: SharedQueue<Pending>,
    opts: BatcherOpts,
    next_id: AtomicU64,
    taken: AtomicUsize,
    /// When the oldest still-pending query arrived (None when drained).
    oldest: TicketLock<Option<Instant>>,
}

impl QueryBatcher {
    /// A batcher able to hold `capacity` queries between resets.
    pub fn new(opts: BatcherOpts, capacity: usize) -> Self {
        let opts = BatcherOpts {
            max_batch: opts.max_batch.clamp(1, MAX_SOURCES),
            ..opts
        };
        Self {
            queue: SharedQueue::with_capacity(capacity.max(1)),
            opts,
            next_id: AtomicU64::new(0),
            taken: AtomicUsize::new(0),
            oldest: TicketLock::new(None),
        }
    }

    /// The effective (clamped) admission policy.
    pub fn opts(&self) -> BatcherOpts {
        self.opts
    }

    /// Submits one query, returning its admission ticket (sequential from
    /// 0 — also its index in the submission order).
    pub fn submit(&self, query: Query) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.queue.push(Pending { id, query });
        self.oldest.lock().get_or_insert_with(Instant::now);
        id
    }

    /// Queries submitted but not yet sealed into a wave.
    pub fn pending(&self) -> usize {
        self.queue.len() - self.taken.load(Ordering::Acquire)
    }

    /// True when the policy says a wave should be sealed now: a full batch
    /// is pending, or a partial one has aged past `max_wait`.
    pub fn ready(&self) -> bool {
        let pending = self.pending();
        if pending >= self.opts.max_batch {
            return true;
        }
        pending > 0
            && self
                .oldest
                .lock()
                .is_some_and(|t| t.elapsed() >= self.opts.max_wait)
    }

    /// Seals and returns the next wave (up to `max_batch` queries in
    /// submission order), or `None` when nothing is pending. Records a
    /// [`EventKind::BatchAdmit`] span covering the oldest query's wait when
    /// a trace session is active.
    pub fn take_wave(&self) -> Option<Vec<(u64, Query)>> {
        let chunk = self.queue.take_chunk(self.opts.max_batch)?;
        self.taken.fetch_add(chunk.len(), Ordering::AcqRel);
        let waited = {
            let mut oldest = self.oldest.lock();
            let waited = oldest.map(|t| t.elapsed()).unwrap_or_default();
            *oldest = (self.pending() > 0).then(Instant::now);
            waited
        };
        if mcbfs_trace::enabled() {
            // Backdate the span to the first admission so the trace shows
            // the true batching delay, not just the seal call.
            let now = mcbfs_trace::now_ns();
            let dur = waited.as_nanos() as u64;
            mcbfs_trace::inject(
                0,
                vec![TraceEvent {
                    start_ns: now.saturating_sub(dur),
                    dur_ns: dur,
                    kind: EventKind::BatchAdmit,
                    arg: chunk.len() as u64,
                }],
            );
        }
        Some(chunk.iter().map(|p| (p.id, p.query)).collect())
    }

    /// Seals everything pending into consecutive waves (a flush — ignores
    /// `max_wait`).
    pub fn drain(&self) -> Vec<Vec<(u64, Query)>> {
        let mut waves = Vec::new();
        while let Some(wave) = self.take_wave() {
            waves.push(wave);
        }
        waves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(root: u32) -> Query {
        Query::Distances { root }
    }

    #[test]
    fn seals_in_submission_order_with_max_batch() {
        let b = QueryBatcher::new(
            BatcherOpts {
                max_batch: 3,
                max_wait: Duration::from_secs(60),
            },
            10,
        );
        for i in 0..7 {
            assert_eq!(b.submit(q(i)), i as u64);
        }
        assert!(b.ready(), "full batch pending");
        let waves = b.drain();
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0].len(), 3);
        assert_eq!(waves[2].len(), 1);
        let ids: Vec<u64> = waves.iter().flatten().map(|&(id, _)| id).collect();
        assert_eq!(ids, (0..7).collect::<Vec<_>>());
        assert_eq!(b.pending(), 0);
        assert!(b.take_wave().is_none());
    }

    #[test]
    fn partial_wave_ready_only_after_max_wait() {
        let b = QueryBatcher::new(
            BatcherOpts {
                max_batch: 8,
                max_wait: Duration::from_millis(1),
            },
            4,
        );
        assert!(!b.ready(), "empty batcher never ready");
        b.submit(q(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(b.ready(), "aged partial wave is ready");
        assert_eq!(b.take_wave().unwrap().len(), 1);
        assert!(!b.ready());
    }

    #[test]
    fn max_batch_clamped_to_kernel_width() {
        let b = QueryBatcher::new(
            BatcherOpts {
                max_batch: 1000,
                max_wait: Duration::ZERO,
            },
            128,
        );
        assert_eq!(b.opts().max_batch, MAX_SOURCES);
        for i in 0..80 {
            b.submit(q(i));
        }
        let waves = b.drain();
        assert_eq!(waves[0].len(), MAX_SOURCES);
        assert_eq!(waves[1].len(), 80 - MAX_SOURCES);
    }

    #[test]
    fn concurrent_submission_loses_nothing() {
        let b = QueryBatcher::new(BatcherOpts::default(), 400);
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = &b;
                s.spawn(move || {
                    for i in 0..100 {
                        b.submit(q(t * 100 + i));
                    }
                });
            }
        });
        let waves = b.drain();
        let mut ids: Vec<u64> = waves.iter().flatten().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..400).collect::<Vec<_>>());
    }
}
