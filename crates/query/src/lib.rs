//! `mcbfs-query`: a batched multi-source BFS query engine.
//!
//! The paper's benchmark regime is one search at a time; the ROADMAP's
//! north star is a service under heavy query traffic. This crate bridges
//! the two with wave execution: heterogeneous queries (BFS trees,
//! distances, st-connectivity, reachability) are admitted by a
//! [`batcher::QueryBatcher`], sealed into waves of up to 64, and served by
//! a bit-parallel multi-source kernel ([`msbfs`]) in which every CSR
//! adjacency fetch advances all in-flight searches at once. Singleton
//! waves fall back to the paper's single-search algorithms, wave dispatch
//! generalizes the per-socket throughput mode, and a deterministic
//! model-mode path prices batched runs on the machine model so serving
//! experiments reproduce exactly on any host.
//!
//! Layering: `engine` (waves, dispatch, results) sits on `msbfs` (the
//! kernel) and `batcher` (admission over `sync::workq`); `stats` flattens
//! reports for `--stats-json`; `kernel` is the batched twin of the
//! Graph500-style kernel in `core`.

pub mod batcher;
pub mod engine;
pub mod kernel;
pub mod msbfs;
pub mod stats;

pub use batcher::{AdmitError, Admitted, BatcherOpts, QueryBatcher};
pub use engine::{BatchReport, Query, QueryEngine, QueryOutcome, QueryResult, WaveStats};
pub use kernel::{run_batched_kernel, BatchedKernelReport};
pub use msbfs::{
    ms_bfs, ms_bfs_deterministic, ms_bfs_deterministic_raw, ms_bfs_raw, MsBfsRun, RawMsBfs,
    MAX_SOURCES,
};
pub use stats::{batch_stats, nearest_rank_quantile, BatchStats, QueryStats};
