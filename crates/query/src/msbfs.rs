//! Bit-parallel multi-source BFS: up to 64 concurrent searches share one
//! CSR sweep.
//!
//! The paper's throughput experiments run independent searches
//! back-to-back; a batched query engine can do much better, because the
//! expensive part of every level — streaming the adjacency arrays through
//! the memory system — is identical across searches. This kernel packs one
//! bit per source into a `u64` mask per vertex (the MS-BFS technique of
//! Then et al., VLDB 2015) so a single edge scan advances every search in
//! the wave at once.
//!
//! State layout reuses [`AtomicBitmap`]'s word accessors directly: a bitmap
//! of `n × 64` bits is exactly an array of `n` atomic source-masks, where
//! word `v` holds the set of sources whose search has reached vertex `v`.
//! Discovery is `d = visit[v] & !seen[w]`; the winner of the
//! `fetch_or` claim (`new = d & !prev`) owns the (source, vertex) pair, so
//! parents are written exactly once and depths — which are level numbers,
//! identical for every claim order — are deterministic. That determinism is
//! what lets the native executor and the model-mode executor produce
//! bit-identical depth arrays.

use mcbfs_core::instrument::Recorder;
use mcbfs_graph::bitmap::{bits_of_word, AtomicBitmap};
use mcbfs_graph::csr::{CsrGraph, VertexId};
use mcbfs_graph::frontier::chunk_of;
use mcbfs_machine::profile::{ThreadCounts, WorkProfile};
use mcbfs_sync::barrier::SpinBarrier;
use mcbfs_sync::pool::scoped_run;
use mcbfs_trace::{EventKind, SpanTimer};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

/// Widest wave one kernel invocation can carry: one bit per source in a
/// `u64` mask.
pub const MAX_SOURCES: usize = 64;

/// Result of one multi-source sweep.
#[derive(Debug)]
pub struct MsBfsRun {
    /// `depths[q][v]` = hop distance of `v` from `sources[q]`
    /// (`u32::MAX` when unreached). Deterministic across executors and
    /// thread counts.
    pub depths: Vec<Vec<u32>>,
    /// `parents[q][v]` = BFS-tree parent of `v` in search `q`
    /// (`UNVISITED` when unreached); present when requested. Each entry is
    /// written by exactly one claim winner, but *which* tree emerges may
    /// vary across native interleavings.
    pub parents: Option<Vec<Vec<VertexId>>>,
    /// Per-level × per-thread operation counts of the shared sweep.
    pub profile: WorkProfile,
    /// Wall-clock seconds (native) or `0.0` (deterministic executor —
    /// callers price the profile with a machine model).
    pub seconds: f64,
    /// Levels executed (including the final empty-discovery sweep).
    pub levels: usize,
}

/// The shared search state: three `n`-word mask arrays plus flat
/// source-major depth/parent grids.
struct MsState<'g> {
    graph: &'g CsrGraph,
    /// Word `v` = sources that have *ever* reached `v`.
    seen: AtomicBitmap,
    /// Double-buffered frontiers; word `v` = sources whose frontier
    /// contains `v` this level (index by parity).
    visit: [AtomicBitmap; 2],
    /// `depth_grid[q * n + v]` holds `depth + 1` (`0` = unreached). The
    /// offset-by-one encoding lets the grid come from a zeroed allocation —
    /// pages the sweep never touches are never materialized, and grid setup
    /// costs nothing inside the serving clock.
    depth_grid: Vec<AtomicU32>,
    /// `parent_grid[q * n + v]` holds `parent + 1` (`0` = unreached);
    /// allocated only when parents were requested.
    parent_grid: Option<Vec<AtomicU32>>,
}

/// A zero-initialized atomic grid straight from the allocator.
/// `AtomicU32` has the same size, alignment and bit validity as `u32`, so
/// reinterpreting a `vec![0u32; len]` (a calloc, i.e. lazily-zeroed pages)
/// is sound and avoids a per-element construction pass.
fn zeroed_atomic_grid(len: usize) -> Vec<AtomicU32> {
    let mut v = std::mem::ManuallyDrop::new(vec![0u32; len]);
    unsafe { Vec::from_raw_parts(v.as_mut_ptr().cast(), v.len(), v.capacity()) }
}

impl<'g> MsState<'g> {
    fn new(graph: &'g CsrGraph, sources: &[VertexId], record_parents: bool) -> Self {
        let n = graph.num_vertices();
        let k = sources.len();
        assert!(
            (1..=MAX_SOURCES).contains(&k),
            "wave width {k} outside 1..={MAX_SOURCES}"
        );
        for &s in sources {
            assert!((s as usize) < n, "source {s} out of range");
        }
        let state = Self {
            graph,
            seen: AtomicBitmap::new(n * 64),
            visit: [AtomicBitmap::new(n * 64), AtomicBitmap::new(n * 64)],
            depth_grid: zeroed_atomic_grid(n * k),
            parent_grid: record_parents.then(|| zeroed_atomic_grid(n * k)),
        };
        for (q, &s) in sources.iter().enumerate() {
            let bit = 1u64 << q;
            state.seen.or_word(s as usize, bit);
            state.visit[0].or_word(s as usize, bit);
            state.depth_grid[q * n + s as usize].store(1, Ordering::Relaxed);
            if let Some(pg) = &state.parent_grid {
                pg[q * n + s as usize].store(s + 1, Ordering::Relaxed);
            }
        }
        state
    }
}

/// One thread's share of one level: scan the vertices whose current-frontier
/// word is non-zero, claim undiscovered (source, vertex) pairs in the next
/// frontier. Returns the operation counts and the number of pairs this
/// thread discovered.
fn sweep(
    st: &MsState<'_>,
    tid: usize,
    threads: usize,
    depth: u32,
    parity: usize,
) -> (ThreadCounts, u64) {
    let n = st.graph.num_vertices();
    let cur = &st.visit[parity];
    let nxt = &st.visit[parity ^ 1];
    let mut c = ThreadCounts::default();
    let mut found = 0u64;
    for v in chunk_of(n, tid, threads) {
        let mask = cur.word(v);
        if mask == 0 {
            continue;
        }
        // Consuming the word as we go leaves this buffer all-zero for its
        // next life as the other parity's frontier.
        cur.set_word(v, 0);
        c.vertices_scanned += 1;
        for &w in st.graph.neighbors(v as VertexId) {
            let wi = w as usize;
            c.edges_scanned += 1;
            c.bitmap_reads += 1;
            let d = mask & !st.seen.word(wi);
            if d == 0 {
                c.edges_skipped += 1;
                continue;
            }
            c.atomic_ops += 1;
            let new = d & !st.seen.or_word(wi, d);
            if new == 0 {
                c.edges_skipped += 1;
                continue;
            }
            c.atomic_ops += 1;
            nxt.or_word(wi, new);
            let claimed = new.count_ones() as u64;
            c.parent_writes += claimed;
            c.queue_pushes += claimed;
            found += claimed;
            for q in bits_of_word(new) {
                st.depth_grid[q * n + wi].store(depth + 1, Ordering::Relaxed);
                if let Some(pg) = &st.parent_grid {
                    pg[q * n + wi].store(v as VertexId + 1, Ordering::Relaxed);
                }
            }
        }
    }
    (c, found)
}

/// A completed sweep whose per-query arrays are still in the shared grids.
///
/// Splitting execution from extraction lets the query engine keep result
/// decoration (depth arrays, histograms, TEPS numerators) outside the
/// serving clock — the Graph500 convention that validation and statistics
/// are not part of the timed kernel.
pub struct RawMsBfs<'g> {
    graph: &'g CsrGraph,
    k: usize,
    st: MsState<'g>,
    recorder: Recorder,
    total_edges: u64,
    /// Kernel wall-clock seconds (native) or `0.0` (deterministic
    /// executor — callers price the profile with a machine model).
    pub seconds: f64,
}

impl RawMsBfs<'_> {
    /// Extracts the per-query depth/parent arrays and the work profile.
    pub fn finish(self) -> MsBfsRun {
        let n = self.graph.num_vertices();
        // Working set the cost model prices: seen + two frontier buffers,
        // one word per vertex each.
        let visited_bytes = 3 * n as u64 * 8;
        let profile = self
            .recorder
            .into_profile(n as u64, visited_bytes, false, self.total_edges);
        let levels = profile.num_levels();
        // The grids store value + 1 with 0 = unreached; the wrapping
        // decrement maps 0 to `u32::MAX` (== `UNVISITED` for parents).
        let load = |grid: &[AtomicU32], q: usize| -> Vec<u32> {
            grid[q * n..(q + 1) * n]
                .iter()
                .map(|a| a.load(Ordering::Relaxed).wrapping_sub(1))
                .collect()
        };
        let depths = (0..self.k).map(|q| load(&self.st.depth_grid, q)).collect();
        let parents = self
            .st
            .parent_grid
            .as_ref()
            .map(|pg| (0..self.k).map(|q| load(pg, q)).collect());
        MsBfsRun {
            depths,
            parents,
            profile,
            seconds: self.seconds,
            levels,
        }
    }
}

/// Runs the wave on real threads (level-synchronous, two barrier episodes
/// per level, per-level trace spans when a session is active).
pub fn ms_bfs(
    graph: &CsrGraph,
    sources: &[VertexId],
    threads: usize,
    record_parents: bool,
) -> MsBfsRun {
    ms_bfs_raw(graph, sources, threads, record_parents).finish()
}

/// [`ms_bfs`] without the result extraction — the serving-path entry point.
pub fn ms_bfs_raw<'g>(
    graph: &'g CsrGraph,
    sources: &[VertexId],
    threads: usize,
    record_parents: bool,
) -> RawMsBfs<'g> {
    let threads = threads.max(1);
    let st = MsState::new(graph, sources, record_parents);
    let recorder = Recorder::new(threads, 1, 2);
    let barrier = SpinBarrier::new(threads);
    let done = AtomicBool::new(false);
    let found_counts: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let total_edges = AtomicU64::new(0);
    let start = Instant::now();
    scoped_run(threads, None, |tid| {
        let mut series: Vec<ThreadCounts> = Vec::new();
        let mut depth = 1u32;
        loop {
            let timer = SpanTimer::start();
            let parity = ((depth - 1) % 2) as usize;
            let (c, found) = sweep(&st, tid, threads, depth, parity);
            found_counts[tid].store(found, Ordering::Relaxed);
            series.push(c);
            timer.finish(EventKind::Level, (depth - 1) as u64);
            if barrier.wait() {
                let total: u64 = found_counts.iter().map(|f| f.load(Ordering::Relaxed)).sum();
                done.store(total == 0, Ordering::Release);
            }
            barrier.wait();
            if done.load(Ordering::Acquire) {
                break;
            }
            depth += 1;
        }
        total_edges.fetch_add(
            series.iter().map(|c| c.edges_scanned).sum::<u64>(),
            Ordering::Relaxed,
        );
        recorder.deposit(tid, series);
        mcbfs_trace::flush_thread();
    });
    let seconds = start.elapsed().as_secs_f64();
    RawMsBfs {
        graph,
        k: sources.len(),
        st,
        recorder,
        total_edges: total_edges.into_inner(),
        seconds,
    }
}

/// Runs the wave as `virtual_threads` deterministic virtual workers on the
/// calling thread — the model-mode executor. Depths, frontiers and the
/// per-level work partition are identical to a native run with the same
/// thread count; only the claim *winners* (parents) can differ natively.
pub fn ms_bfs_deterministic(
    graph: &CsrGraph,
    sources: &[VertexId],
    virtual_threads: usize,
    record_parents: bool,
) -> MsBfsRun {
    ms_bfs_deterministic_raw(graph, sources, virtual_threads, record_parents).finish()
}

/// [`ms_bfs_deterministic`] without the result extraction.
pub fn ms_bfs_deterministic_raw<'g>(
    graph: &'g CsrGraph,
    sources: &[VertexId],
    virtual_threads: usize,
    record_parents: bool,
) -> RawMsBfs<'g> {
    let threads = virtual_threads.max(1);
    let st = MsState::new(graph, sources, record_parents);
    let recorder = Recorder::new(threads, 1, 2);
    let mut series: Vec<Vec<ThreadCounts>> = vec![Vec::new(); threads];
    let mut total_edges = 0u64;
    let mut depth = 1u32;
    loop {
        let parity = ((depth - 1) % 2) as usize;
        let mut found = 0u64;
        for (tid, s) in series.iter_mut().enumerate() {
            let (c, f) = sweep(&st, tid, threads, depth, parity);
            total_edges += c.edges_scanned;
            s.push(c);
            found += f;
        }
        if found == 0 {
            break;
        }
        depth += 1;
    }
    for (tid, s) in series.into_iter().enumerate() {
        recorder.deposit(tid, s);
    }
    RawMsBfs {
        graph,
        k: sources.len(),
        st,
        recorder,
        total_edges,
        seconds: 0.0,
    }
}

/// Vertices per hop depth for one search's depth array — same shape as
/// `BfsStats::depth_histogram`, so batched and single-source runs compare
/// directly.
pub fn depth_histogram_of(depths: &[u32]) -> Vec<u64> {
    let max = depths.iter().copied().filter(|&d| d != u32::MAX).max();
    let mut hist = vec![0u64; max.map_or(0, |m| m as usize + 1)];
    for &d in depths {
        if d != u32::MAX {
            hist[d as usize] += 1;
        }
    }
    hist
}

/// The per-query TEPS numerator: adjacency entries of every vertex the
/// search reached. Identical whether the search ran alone or in a wave,
/// which keeps batched-vs-sequential aggregate TEPS an apples-to-apples
/// wall-time comparison.
pub fn reachable_edges_of(graph: &CsrGraph, depths: &[u32]) -> u64 {
    depths
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != u32::MAX)
        .map(|(v, _)| graph.degree(v as VertexId) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcbfs_gen::prelude::*;
    use mcbfs_graph::csr::UNVISITED;
    use mcbfs_graph::validate::sequential_levels;

    fn check_against_sequential(g: &CsrGraph, sources: &[VertexId], threads: usize) {
        let run = ms_bfs(g, sources, threads, true);
        for (q, &s) in sources.iter().enumerate() {
            assert_eq!(run.depths[q], sequential_levels(g, s), "source {s}");
        }
        // Parent arrays must be consistent with the depth arrays.
        let parents = run.parents.expect("requested");
        for (q, (ps, ds)) in parents.iter().zip(&run.depths).enumerate() {
            for (v, (&p, &d)) in ps.iter().zip(ds).enumerate() {
                if d == u32::MAX {
                    assert_eq!(p, UNVISITED);
                } else if d == 0 {
                    assert_eq!(p as usize, v, "root of search {q}");
                } else {
                    assert_eq!(ds[p as usize], d - 1, "parent one level up");
                    assert!(g.has_edge(p, v as VertexId), "tree edge exists");
                }
            }
        }
    }

    #[test]
    fn wave_matches_sequential_bfs_per_source() {
        let g = RmatBuilder::new(9, 8).seed(11).build();
        let sources: Vec<VertexId> = (0..17).map(|i| (i * 13) % 512).collect();
        check_against_sequential(&g, &sources, 3);
    }

    #[test]
    fn full_width_wave_on_uniform_graph() {
        let g = UniformBuilder::new(800, 6).seed(4).build();
        let sources: Vec<VertexId> = (0..64).map(|i| i as VertexId * 7 % 800).collect();
        check_against_sequential(&g, &sources, 4);
    }

    #[test]
    fn singleton_and_duplicate_sources() {
        let g = UniformBuilder::new(300, 5).seed(9).build();
        check_against_sequential(&g, &[42], 2);
        // Two queries from the same root share mask bits without conflict.
        check_against_sequential(&g, &[7, 7, 21], 2);
    }

    #[test]
    fn deterministic_executor_matches_native_depths() {
        let g = RmatBuilder::new(8, 8).seed(3).build();
        let sources: Vec<VertexId> = vec![0, 5, 100, 200];
        let native = ms_bfs(&g, &sources, 4, false);
        let model = ms_bfs_deterministic(&g, &sources, 4, false);
        assert_eq!(native.depths, model.depths);
        assert_eq!(native.levels, model.levels);
        // Identical work partition → identical per-level totals.
        assert_eq!(
            native.profile.total().edges_scanned,
            model.profile.total().edges_scanned
        );
        let rerun = ms_bfs_deterministic(&g, &sources, 4, false);
        assert_eq!(model.depths, rerun.depths);
        assert_eq!(model.profile, rerun.profile);
    }

    #[test]
    fn profile_counts_are_plausible() {
        let g = UniformBuilder::new(500, 8).seed(1).build();
        let run = ms_bfs(&g, &[0, 1, 2], 2, false);
        let t = run.profile.total();
        assert!(t.edges_scanned > 0);
        assert_eq!(run.profile.edges_traversed, t.edges_scanned);
        // Every (source, vertex) pair is claimed at most once.
        let reached: u64 = run
            .depths
            .iter()
            .flatten()
            .filter(|&&d| d != u32::MAX && d != 0)
            .count() as u64;
        assert_eq!(t.parent_writes, reached);
        assert!(run.seconds > 0.0);
        assert_eq!(run.levels, run.profile.num_levels());
    }

    #[test]
    fn histogram_and_edge_helpers() {
        let depths = vec![0, 1, 1, u32::MAX, 2];
        assert_eq!(depth_histogram_of(&depths), vec![1, 2, 1]);
        assert_eq!(depth_histogram_of(&[u32::MAX]), Vec::<u64>::new());
        let g = CsrGraph::from_edges_symmetric(5, &[(0, 1), (1, 2), (2, 4), (3, 3)]);
        // Vertex 3 unreached: degree sum of {0,1,2,4} with (3,3) excluded.
        assert_eq!(reachable_edges_of(&g, &depths), 6);
    }

    #[test]
    #[should_panic(expected = "wave width")]
    fn oversized_wave_panics() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let sources = vec![0; 65];
        ms_bfs(&g, &sources, 1, false);
    }
}
