//! Batched counterpart of the Graph500-style kernel (`core::kernel`): the
//! same deterministically-sampled roots, served once as a one-query-at-a-
//! time loop and once through wide MS-BFS waves, so the two aggregate TEPS
//! numbers share both their root set and their edge numerator and the ratio
//! is a pure wall-time comparison.

use crate::engine::{BatchReport, Query, QueryEngine};
use mcbfs_core::kernel::sample_roots;
use mcbfs_core::runner::{Algorithm, ExecMode};
use mcbfs_graph::csr::{CsrGraph, VertexId};

/// Sequential-loop vs batched serving comparison over one root sample.
#[derive(Debug)]
pub struct BatchedKernelReport {
    /// The sampled roots (shared by both runs).
    pub roots: Vec<VertexId>,
    /// Waves the batched run used.
    pub waves: usize,
    /// Common TEPS numerator: Σ over roots of reachable adjacency entries.
    pub total_edges: u64,
    /// Makespan of the one-query-at-a-time loop.
    pub sequential_seconds: f64,
    /// Makespan of the batched run.
    pub batched_seconds: f64,
    /// Full per-query report of the batched run.
    pub batched: BatchReport,
}

impl BatchedKernelReport {
    /// Aggregate TEPS of the one-at-a-time loop.
    pub fn sequential_teps(&self) -> f64 {
        self.total_edges as f64 / self.sequential_seconds.max(1e-9)
    }

    /// Aggregate TEPS of the batched run.
    pub fn batched_teps(&self) -> f64 {
        self.total_edges as f64 / self.batched_seconds.max(1e-9)
    }

    /// Batched speedup over the loop (ratio of makespans).
    pub fn speedup(&self) -> f64 {
        self.sequential_seconds / self.batched_seconds.max(1e-9)
    }
}

/// Runs `searches` distance queries from [`sample_roots`]`(graph, searches,
/// seed)` twice: as singleton waves executed back-to-back with `algorithm`
/// (the paper's kernel regime), then batched `max_batch` wide through the
/// MS-BFS engine. Both runs use `threads` workers and `mode`.
pub fn run_batched_kernel(
    graph: &CsrGraph,
    algorithm: Algorithm,
    threads: usize,
    mode: ExecMode,
    searches: usize,
    seed: u64,
    max_batch: usize,
) -> BatchedKernelReport {
    let roots = sample_roots(graph, searches.max(1), seed);
    let queries: Vec<Query> = roots
        .iter()
        .map(|&r| Query::Distances { root: r })
        .collect();
    let engine = |batch: usize| {
        QueryEngine::new(graph)
            .threads(threads)
            .max_batch(batch)
            .fallback(algorithm)
            .mode(mode.clone())
    };
    let sequential = engine(1).execute(&queries);
    let batched = engine(max_batch).execute(&queries);
    let total_edges = batched.total_edges();
    debug_assert_eq!(
        sequential.total_edges(),
        total_edges,
        "both runs reach the same vertex sets"
    );
    BatchedKernelReport {
        roots,
        waves: batched.waves.len(),
        total_edges,
        sequential_seconds: sequential.seconds,
        batched_seconds: batched.seconds,
        batched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcbfs_gen::prelude::*;
    use mcbfs_graph::validate::sequential_levels;
    use mcbfs_machine::model::MachineModel;

    #[test]
    fn batched_kernel_shares_roots_and_edges() {
        let g = RmatBuilder::new(10, 8).seed(31).permute(true).build();
        let r = run_batched_kernel(&g, Algorithm::Sequential, 1, ExecMode::Native, 8, 3, 64);
        assert_eq!(r.roots, sample_roots(&g, 8, 3));
        assert_eq!(r.waves, 1);
        assert_eq!(r.batched.outcomes.len(), 8);
        for o in &r.batched.outcomes {
            assert_eq!(
                o.result.depths().unwrap(),
                &sequential_levels(&g, o.query.source())[..]
            );
        }
        assert!(r.total_edges > 0);
        assert!(r.sequential_teps() > 0.0 && r.batched_teps() > 0.0);
        assert!(r.speedup() > 0.0);
    }

    #[test]
    fn model_mode_comparison_is_deterministic() {
        let g = UniformBuilder::new(2_000, 8).seed(12).build();
        let mode = ExecMode::model(MachineModel::nehalem_ep());
        let run = || run_batched_kernel(&g, Algorithm::Sequential, 4, mode.clone(), 16, 7, 64);
        let (a, b) = (run(), run());
        assert_eq!(a.sequential_seconds, b.sequential_seconds);
        assert_eq!(a.batched_seconds, b.batched_seconds);
        // One shared 4-thread sweep beats 16 modelled one-at-a-time
        // sequential searches.
        assert!(
            a.speedup() > 1.0,
            "modelled speedup {:.2} (seq {:.4}s vs batched {:.4}s)",
            a.speedup(),
            a.sequential_seconds,
            a.batched_seconds
        );
    }
}
