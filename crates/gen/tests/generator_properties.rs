//! Property tests over the generator suite: structural invariants that must
//! hold for every seed and parameterization.

use mcbfs_gen::grid::{GridBuilder, Stencil};
use mcbfs_gen::prelude::*;
use mcbfs_gen::stats::degree_stats;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_generator_invariants(n in 1usize..2_000, d in 0usize..16, seed in any::<u64>()) {
        let edges = UniformBuilder::new(n, d).seed(seed).build_edges();
        prop_assert_eq!(edges.len(), n * d);
        prop_assert!(edges.iter().all(|&(u, v)| (u as usize) < n && (v as usize) < n));
        // Every vertex emits exactly d edges.
        let mut out = vec![0usize; n];
        for &(u, _) in &edges {
            out[u as usize] += 1;
        }
        prop_assert!(out.iter().all(|&c| c == d));
    }

    #[test]
    fn rmat_generator_invariants(scale in 1u32..12, d in 1usize..10, seed in any::<u64>()) {
        let b = RmatBuilder::new(scale, d).seed(seed);
        let edges = b.build_edges();
        prop_assert_eq!(edges.len(), d << scale);
        let n = 1usize << scale;
        prop_assert!(edges.iter().all(|&(u, v)| (u as usize) < n && (v as usize) < n));
        // Determinism.
        prop_assert_eq!(edges, RmatBuilder::new(scale, d).seed(seed).build_edges());
    }

    #[test]
    fn rmat_permutation_preserves_multiset_of_degrees(
        scale in 2u32..10,
        d in 1usize..8,
        seed in any::<u64>(),
    ) {
        let plain = RmatBuilder::new(scale, d).seed(seed).build();
        let perm = RmatBuilder::new(scale, d).seed(seed).permute(true).build();
        let n = 1u32 << scale;
        let mut d1: Vec<usize> = (0..n).map(|v| plain.degree(v)).collect();
        let mut d2: Vec<usize> = (0..n).map(|v| perm.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn ssca2_generator_invariants(n in 1usize..1_500, cl in 1usize..40, seed in any::<u64>()) {
        let g = Ssca2Builder::new(n).max_clique_size(cl).seed(seed).build();
        prop_assert_eq!(g.num_vertices(), n);
        // Intra-clique completeness implies max degree >= smallest clique-1;
        // at minimum the graph is well-formed and symmetric.
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(v, u), "({u},{v}) not mirrored");
        }
    }

    #[test]
    fn grid_generator_invariants(side in 1usize..40) {
        for stencil in [Stencil::Four, Stencil::Eight, Stencil::Sixteen] {
            let g = GridBuilder::new(side, stencil).build();
            prop_assert_eq!(g.num_vertices(), side * side);
            let max_deg = stencil.offsets().len();
            prop_assert!(g.max_degree() <= max_deg);
            // Interior vertices (if any) reach the full stencil degree.
            if side >= 5 {
                let center = (side / 2 * side + side / 2) as u32;
                prop_assert_eq!(g.degree(center), max_deg);
            }
        }
    }

    #[test]
    fn gini_is_within_unit_interval(scale in 2u32..11, d in 1usize..8, seed in any::<u64>()) {
        let g = RmatBuilder::new(scale, d).seed(seed).build();
        let s = degree_stats(&g);
        prop_assert!((0.0..=1.0).contains(&s.gini), "gini {}", s.gini);
        prop_assert!(s.min <= s.max);
        prop_assert!(s.mean >= 0.0);
    }
}
