//! Deterministic structured graphs: the analytic shapes used to probe
//! corner cases of a traversal (extreme diameter, extreme fan-out, perfect
//! regularity). Not part of the paper's evaluation, but every test suite
//! for a BFS needs them, and building them by hand in each test invites
//! mistakes.

use crate::GraphBuilder;
use mcbfs_graph::csr::{CsrGraph, VertexId};

/// The structured families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// A simple path `0 - 1 - … - (n-1)`: diameter `n - 1`, the worst case
    /// for level-synchronous overheads.
    Path,
    /// A cycle: every vertex degree 2, diameter `n / 2`.
    Cycle,
    /// A star centered at vertex 0: two BFS levels, maximal fan-out.
    Star,
    /// The complete graph: one BFS level, maximal frontier density.
    Complete,
    /// A complete binary tree rooted at 0 (heap indexing): logarithmic
    /// diameter, perfectly predictable level sizes.
    BinaryTree,
    /// A 2-D torus (grid with wraparound): 4-regular everywhere, no border
    /// effects; `n` is rounded down to a perfect square.
    Torus,
}

/// Builder for the structured families.
///
/// # Examples
///
/// ```
/// use mcbfs_gen::synthetic::{Shape, SyntheticBuilder};
/// use mcbfs_gen::GraphBuilder;
///
/// let tree = SyntheticBuilder::new(Shape::BinaryTree, 15).build();
/// assert_eq!(tree.degree(0), 2);   // root: two children
/// assert_eq!(tree.degree(1), 3);   // inner: parent + two children
/// assert_eq!(tree.degree(14), 1);  // leaf
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SyntheticBuilder {
    shape: Shape,
    n: usize,
}

impl SyntheticBuilder {
    /// A graph of `shape` over (about) `n` vertices — see each shape's
    /// docs for rounding rules.
    pub fn new(shape: Shape, n: usize) -> Self {
        Self { shape, n }
    }
}

impl GraphBuilder for SyntheticBuilder {
    fn num_vertices(&self) -> usize {
        match self.shape {
            Shape::Torus => {
                let side = (self.n as f64).sqrt().floor() as usize;
                side * side
            }
            _ => self.n,
        }
    }

    fn build_edges(&self) -> Vec<(VertexId, VertexId)> {
        let n = self.num_vertices();
        let mut edges = Vec::new();
        if n < 2 {
            return edges;
        }
        match self.shape {
            Shape::Path => {
                for i in 0..n - 1 {
                    edges.push((i as VertexId, (i + 1) as VertexId));
                }
            }
            Shape::Cycle => {
                for i in 0..n {
                    edges.push((i as VertexId, ((i + 1) % n) as VertexId));
                }
            }
            Shape::Star => {
                for i in 1..n {
                    edges.push((0, i as VertexId));
                }
            }
            Shape::Complete => {
                for i in 0..n {
                    for j in (i + 1)..n {
                        edges.push((i as VertexId, j as VertexId));
                    }
                }
            }
            Shape::BinaryTree => {
                for i in 1..n {
                    edges.push((((i - 1) / 2) as VertexId, i as VertexId));
                }
            }
            Shape::Torus => {
                let side = (n as f64).sqrt().round() as usize;
                for r in 0..side {
                    for c in 0..side {
                        let id = (r * side + c) as VertexId;
                        let right = (r * side + (c + 1) % side) as VertexId;
                        let down = (((r + 1) % side) * side + c) as VertexId;
                        if id != right {
                            edges.push((id, right));
                        }
                        if id != down {
                            edges.push((id, down));
                        }
                    }
                }
            }
        }
        edges
    }
}

/// Shorthand constructors.
impl SyntheticBuilder {
    /// `Shape::Path` over `n` vertices.
    pub fn path(n: usize) -> CsrGraph {
        Self::new(Shape::Path, n).build()
    }

    /// `Shape::Cycle` over `n` vertices.
    pub fn cycle(n: usize) -> CsrGraph {
        Self::new(Shape::Cycle, n).build()
    }

    /// `Shape::Star` over `n` vertices.
    pub fn star(n: usize) -> CsrGraph {
        Self::new(Shape::Star, n).build()
    }

    /// `Shape::Complete` over `n` vertices.
    pub fn complete(n: usize) -> CsrGraph {
        Self::new(Shape::Complete, n).build()
    }

    /// `Shape::BinaryTree` over `n` vertices.
    pub fn binary_tree(n: usize) -> CsrGraph {
        Self::new(Shape::BinaryTree, n).build()
    }

    /// `Shape::Torus` over ~`n` vertices (rounded to a square).
    pub fn torus(n: usize) -> CsrGraph {
        Self::new(Shape::Torus, n).build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcbfs_graph::validate::sequential_levels;

    #[test]
    fn path_has_full_diameter() {
        let g = SyntheticBuilder::path(100);
        let levels = sequential_levels(&g, 0);
        assert_eq!(*levels.iter().max().unwrap(), 99);
        assert_eq!(g.num_edges(), 2 * 99);
    }

    #[test]
    fn cycle_is_2_regular_with_half_diameter() {
        let g = SyntheticBuilder::cycle(100);
        assert!((0..100u32).all(|v| g.degree(v) == 2));
        let levels = sequential_levels(&g, 0);
        assert_eq!(*levels.iter().max().unwrap(), 50);
    }

    #[test]
    fn star_has_two_levels() {
        let g = SyntheticBuilder::star(64);
        assert_eq!(g.degree(0), 63);
        let levels = sequential_levels(&g, 5);
        assert_eq!(*levels.iter().max().unwrap(), 2); // leaf -> hub -> leaves
    }

    #[test]
    fn complete_has_one_level() {
        let g = SyntheticBuilder::complete(20);
        assert!((0..20u32).all(|v| g.degree(v) == 19));
        let levels = sequential_levels(&g, 3);
        assert_eq!(*levels.iter().max().unwrap(), 1);
    }

    #[test]
    fn binary_tree_level_sizes_are_powers_of_two() {
        let g = SyntheticBuilder::binary_tree(127); // perfect depth-6 tree
        let levels = sequential_levels(&g, 0);
        for d in 0..7u32 {
            let count = levels.iter().filter(|&&l| l == d).count();
            assert_eq!(count, 1 << d, "level {d}");
        }
    }

    #[test]
    fn torus_is_4_regular_everywhere() {
        let g = SyntheticBuilder::torus(100); // 10x10
        assert_eq!(g.num_vertices(), 100);
        assert!(
            (0..100u32).all(|v| g.degree(v) == 4),
            "torus must have no borders"
        );
    }

    #[test]
    fn tiny_torus_degenerates_gracefully() {
        let g = SyntheticBuilder::torus(1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
        let g = SyntheticBuilder::torus(4); // 2x2: wraparound == neighbor
        assert_eq!(g.num_vertices(), 4);
        assert!((0..4u32).all(|v| g.degree(v) >= 2));
    }

    #[test]
    fn degenerate_sizes() {
        for shape in [
            Shape::Path,
            Shape::Cycle,
            Shape::Star,
            Shape::Complete,
            Shape::BinaryTree,
        ] {
            let g = SyntheticBuilder::new(shape, 0).build();
            assert_eq!(g.num_vertices(), 0, "{shape:?}");
            let g = SyntheticBuilder::new(shape, 1).build();
            assert_eq!(g.num_edges(), 0, "{shape:?}");
        }
    }
}
