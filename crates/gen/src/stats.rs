//! Degree-distribution statistics for generated graphs.
//!
//! The paper's §IV attributes the R-MAT vs. uniform processing-rate gap to
//! degree skew ("a few high degree vertices ... lead to a performance
//! advantage"); these helpers quantify that skew for tests and for the
//! benchmark reports.

use mcbfs_graph::csr::CsrGraph;

/// Summary statistics of a graph's out-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest out-degree.
    pub min: usize,
    /// Largest out-degree.
    pub max: usize,
    /// Mean out-degree (the paper's "arity").
    pub mean: f64,
    /// Standard deviation of the out-degree.
    pub std_dev: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Gini coefficient of the degree distribution in `[0, 1]`:
    /// 0 = perfectly regular, →1 = all edges on one vertex.
    pub gini: f64,
}

/// Computes [`DegreeStats`] for `graph`.
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let n = graph.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
            isolated: 0,
            gini: 0.0,
        };
    }
    let mut degrees: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    let min = *degrees.iter().min().unwrap();
    let max = *degrees.iter().max().unwrap();
    let isolated = degrees.iter().filter(|&&d| d == 0).count();
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let var = degrees
        .iter()
        .map(|&d| {
            let x = d as f64 - mean;
            x * x
        })
        .sum::<f64>()
        / n as f64;
    // Gini via the sorted-rank formula.
    degrees.sort_unstable();
    let total: f64 = degrees.iter().sum::<usize>() as f64;
    let gini = if total == 0.0 {
        0.0
    } else {
        let weighted: f64 = degrees
            .iter()
            .enumerate()
            .map(|(i, &d)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * d as f64)
            .sum();
        weighted / (n as f64 * total)
    };
    DegreeStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
        isolated,
        gini,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn regular_graph_has_zero_gini() {
        // A cycle: every vertex degree 2.
        let edges: Vec<_> = (0..10u32).map(|i| (i, (i + 1) % 10)).collect();
        let g = CsrGraph::from_edges_symmetric(10, &edges);
        let s = degree_stats(&g);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!((s.std_dev).abs() < 1e-12);
        assert!(s.gini.abs() < 1e-12);
    }

    #[test]
    fn star_graph_is_maximally_skewed() {
        let edges: Vec<_> = (1..100u32).map(|i| (0, i)).collect();
        let g = CsrGraph::from_edges(100, &edges);
        let s = degree_stats(&g);
        assert_eq!(s.max, 99);
        assert_eq!(s.isolated, 99);
        assert!(s.gini > 0.97, "gini = {}", s.gini);
    }

    #[test]
    fn rmat_more_skewed_than_uniform() {
        let uni = degree_stats(&UniformBuilder::new(4_096, 8).seed(1).build());
        let rmat = degree_stats(&RmatBuilder::new(12, 8).seed(1).build());
        assert!(
            rmat.gini > 1.5 * uni.gini,
            "rmat gini {} vs uniform {}",
            rmat.gini,
            uni.gini
        );
        assert!(rmat.max > 4 * uni.max);
    }

    #[test]
    fn mean_matches_avg_degree() {
        let g = UniformBuilder::new(512, 5).seed(2).build();
        let s = degree_stats(&g);
        assert!((s.mean - g.avg_degree()).abs() < 1e-12);
    }
}
