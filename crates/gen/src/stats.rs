//! Degree-distribution statistics for generated graphs.
//!
//! The paper's §IV attributes the R-MAT vs. uniform processing-rate gap to
//! degree skew ("a few high degree vertices ... lead to a performance
//! advantage"); these helpers quantify that skew for tests and for the
//! benchmark reports.

use mcbfs_graph::csr::CsrGraph;

/// Summary statistics of a graph's out-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest out-degree.
    pub min: usize,
    /// Largest out-degree.
    pub max: usize,
    /// Mean out-degree (the paper's "arity").
    pub mean: f64,
    /// Standard deviation of the out-degree.
    pub std_dev: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Gini coefficient of the degree distribution in `[0, 1]`:
    /// 0 = perfectly regular, →1 = all edges on one vertex.
    pub gini: f64,
}

/// Computes [`DegreeStats`] for `graph`.
pub fn degree_stats(graph: &CsrGraph) -> DegreeStats {
    let n = graph.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
            isolated: 0,
            gini: 0.0,
        };
    }
    let mut degrees: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    let min = *degrees.iter().min().unwrap();
    let max = *degrees.iter().max().unwrap();
    let isolated = degrees.iter().filter(|&&d| d == 0).count();
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let var = degrees
        .iter()
        .map(|&d| {
            let x = d as f64 - mean;
            x * x
        })
        .sum::<f64>()
        / n as f64;
    // Gini via the sorted-rank formula.
    degrees.sort_unstable();
    let total: f64 = degrees.iter().sum::<usize>() as f64;
    let gini = if total == 0.0 {
        0.0
    } else {
        let weighted: f64 = degrees
            .iter()
            .enumerate()
            .map(|(i, &d)| (2.0 * (i as f64 + 1.0) - n as f64 - 1.0) * d as f64)
            .sum();
        weighted / (n as f64 * total)
    };
    DegreeStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
        isolated,
        gini,
    }
}

/// Deterministic cache-locality metrics of a graph's vertex labelling.
///
/// Both metrics are pure functions of the CSR arrays — no timing, no
/// sampling — so orderings are comparable across machines and runs. They
/// quantify how far apart in the id space (and therefore in the parent
/// array / visited bitmap) a traversal's random accesses land:
///
/// * **mean neighbor ID-gap** — the mean of `|u − v|` over every directed
///   edge `(u, v)`. Each edge scan probes the visit state of `v` while
///   the traversal is positioned at `u`; a small gap means the probe hits
///   memory near the already-hot region around `u`.
/// * **adjacency working-set span** — the mean over non-isolated vertices
///   of `max(neighbors) − min(neighbors)`, the width of the id window one
///   vertex's scan touches. Spans below a cache's id capacity mean whole
///   adjacency scans stay resident.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityStats {
    /// Mean `|u − v|` over all directed edges (0 for edgeless graphs).
    pub mean_neighbor_gap: f64,
    /// Mean `max − min` neighbor id over non-isolated vertices.
    pub mean_adjacency_span: f64,
    /// Largest single neighbor gap observed.
    pub max_neighbor_gap: u64,
}

/// Computes [`LocalityStats`] for `graph`'s current labelling.
pub fn locality_stats(graph: &CsrGraph) -> LocalityStats {
    let n = graph.num_vertices();
    let mut gap_sum: u128 = 0;
    let mut max_gap: u64 = 0;
    let mut span_sum: u128 = 0;
    let mut non_isolated: u64 = 0;
    for u in 0..n as u32 {
        let neighbors = graph.neighbors(u);
        if neighbors.is_empty() {
            continue;
        }
        non_isolated += 1;
        for &v in neighbors {
            let gap = u64::from(u.abs_diff(v));
            gap_sum += u128::from(gap);
            max_gap = max_gap.max(gap);
        }
        // Adjacency lists are sorted ascending, so the span is last − first.
        span_sum += u128::from(neighbors[neighbors.len() - 1] - neighbors[0]);
    }
    let m = graph.num_edges();
    LocalityStats {
        mean_neighbor_gap: if m == 0 {
            0.0
        } else {
            gap_sum as f64 / m as f64
        },
        mean_adjacency_span: if non_isolated == 0 {
            0.0
        } else {
            span_sum as f64 / non_isolated as f64
        },
        max_neighbor_gap: max_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn regular_graph_has_zero_gini() {
        // A cycle: every vertex degree 2.
        let edges: Vec<_> = (0..10u32).map(|i| (i, (i + 1) % 10)).collect();
        let g = CsrGraph::from_edges_symmetric(10, &edges);
        let s = degree_stats(&g);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!((s.std_dev).abs() < 1e-12);
        assert!(s.gini.abs() < 1e-12);
    }

    #[test]
    fn star_graph_is_maximally_skewed() {
        let edges: Vec<_> = (1..100u32).map(|i| (0, i)).collect();
        let g = CsrGraph::from_edges(100, &edges);
        let s = degree_stats(&g);
        assert_eq!(s.max, 99);
        assert_eq!(s.isolated, 99);
        assert!(s.gini > 0.97, "gini = {}", s.gini);
    }

    #[test]
    fn rmat_more_skewed_than_uniform() {
        let uni = degree_stats(&UniformBuilder::new(4_096, 8).seed(1).build());
        let rmat = degree_stats(&RmatBuilder::new(12, 8).seed(1).build());
        assert!(
            rmat.gini > 1.5 * uni.gini,
            "rmat gini {} vs uniform {}",
            rmat.gini,
            uni.gini
        );
        assert!(rmat.max > 4 * uni.max);
    }

    #[test]
    fn mean_matches_avg_degree() {
        let g = UniformBuilder::new(512, 5).seed(2).build();
        let s = degree_stats(&g);
        assert!((s.mean - g.avg_degree()).abs() < 1e-12);
    }

    #[test]
    fn locality_of_empty_and_edgeless_graphs() {
        let empty = locality_stats(&CsrGraph::from_edges(0, &[]));
        assert_eq!(empty.mean_neighbor_gap, 0.0);
        assert_eq!(empty.mean_adjacency_span, 0.0);
        let isolated = locality_stats(&CsrGraph::from_edges(5, &[]));
        assert_eq!(isolated.mean_neighbor_gap, 0.0);
        assert_eq!(isolated.max_neighbor_gap, 0);
    }

    #[test]
    fn locality_on_a_path_is_unit_gap() {
        // A path in natural order: every edge spans exactly one id.
        let edges: Vec<_> = (0..9u32).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges_symmetric(10, &edges);
        let s = locality_stats(&g);
        assert_eq!(s.mean_neighbor_gap, 1.0);
        assert_eq!(s.max_neighbor_gap, 1);
        // Interior vertices see {v-1, v+1} (span 2), endpoints span 0.
        assert!((s.mean_adjacency_span - 16.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn star_center_dominates_span() {
        let edges: Vec<_> = (1..8u32).map(|i| (0, i)).collect();
        let g = CsrGraph::from_edges_symmetric(8, &edges);
        let s = locality_stats(&g);
        // Center scans ids 1..=7 (span 6); every leaf scans only {0}.
        assert!((s.mean_adjacency_span - 6.0 / 8.0).abs() < 1e-12);
        assert_eq!(s.max_neighbor_gap, 7);
    }

    #[test]
    fn scattered_labelling_has_larger_gap_than_contiguous() {
        // The same path relabelled by a stride permutation: ids that were
        // adjacent are now far apart.
        let contiguous: Vec<_> = (0..99u32).map(|i| (i, i + 1)).collect();
        let scattered: Vec<_> = (0..99u32)
            .map(|i| ((i * 37) % 100, ((i + 1) * 37) % 100))
            .collect();
        let near = locality_stats(&CsrGraph::from_edges_symmetric(100, &contiguous));
        let far = locality_stats(&CsrGraph::from_edges_symmetric(100, &scattered));
        assert!(far.mean_neighbor_gap > 10.0 * near.mean_neighbor_gap);
    }
}
