//! Uniformly random graphs: `n` vertices of out-degree `d` with neighbours
//! chosen uniformly at random — the paper's first benchmark family.

use crate::GraphBuilder;
use mcbfs_graph::csr::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Builder for uniformly random graphs.
///
/// # Examples
///
/// ```
/// use mcbfs_gen::prelude::*;
///
/// let g = UniformBuilder::new(1_000, 8).seed(7).build();
/// assert_eq!(g.num_vertices(), 1_000);
/// // Undirected: 1000 * 8 directed half-edges, each mirrored (self-loops
/// // excepted), so close to 16_000 directed edges.
/// assert!(g.num_edges() >= 15_900 && g.num_edges() <= 16_000);
/// ```
#[derive(Clone, Debug)]
pub struct UniformBuilder {
    n: usize,
    degree: usize,
    seed: u64,
    symmetric: bool,
}

impl UniformBuilder {
    /// A graph with `n` vertices, each picking `degree` random neighbours.
    pub fn new(n: usize, degree: usize) -> Self {
        Self {
            n,
            degree,
            seed: 0xC0FFEE,
            symmetric: true,
        }
    }

    /// Sets the RNG seed (default `0xC0FFEE`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chooses directed (`false`) vs. mirrored undirected (`true`, default)
    /// edge insertion.
    pub fn undirected(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Average degree parameter `d`.
    pub fn degree(&self) -> usize {
        self.degree
    }
}

impl GraphBuilder for UniformBuilder {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn symmetric(&self) -> bool {
        self.symmetric
    }

    fn build_edges(&self) -> Vec<(VertexId, VertexId)> {
        if self.n == 0 || self.degree == 0 {
            return Vec::new();
        }
        let n = self.n as u64;
        // One chunk of source vertices per rayon task, each with an RNG
        // derived from (seed, chunk) so output is thread-count independent.
        const CHUNK: usize = 1 << 14;
        let chunks: Vec<usize> = (0..self.n).step_by(CHUNK).collect();
        chunks
            .par_iter()
            .flat_map_iter(|&start| {
                let end = (start + CHUNK).min(self.n);
                let mut rng = SmallRng::seed_from_u64(
                    self.seed ^ (start as u64).wrapping_mul(0x9E3779B97F4A7C15),
                );
                let degree = self.degree;
                (start..end).flat_map(move |u| {
                    let mut out = Vec::with_capacity(degree);
                    for _ in 0..degree {
                        out.push((u as VertexId, rng.gen_range(0..n) as VertexId));
                    }
                    out
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = UniformBuilder::new(500, 4).seed(9).build_edges();
        let b = UniformBuilder::new(500, 4).seed(9).build_edges();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = UniformBuilder::new(500, 4).seed(1).build_edges();
        let b = UniformBuilder::new(500, 4).seed(2).build_edges();
        assert_ne!(a, b);
    }

    #[test]
    fn edge_count_is_n_times_d() {
        let edges = UniformBuilder::new(300, 7).build_edges();
        assert_eq!(edges.len(), 2_100);
    }

    #[test]
    fn endpoints_in_range() {
        let edges = UniformBuilder::new(64, 3).seed(5).build_edges();
        assert!(edges
            .iter()
            .all(|&(u, v)| (u as usize) < 64 && (v as usize) < 64));
    }

    #[test]
    fn zero_vertices_or_degree_yield_empty() {
        assert!(UniformBuilder::new(0, 8).build_edges().is_empty());
        assert!(UniformBuilder::new(8, 0).build_edges().is_empty());
    }

    #[test]
    fn directed_build_has_exact_edges() {
        let g = UniformBuilder::new(100, 5).undirected(false).build();
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn average_degree_close_to_parameter() {
        let g = UniformBuilder::new(2_000, 16).seed(3).build();
        // Undirected doubling: average total degree ~ 2 * 16 (minus
        // un-mirrored self-loops).
        let avg = g.avg_degree();
        assert!((avg - 32.0).abs() < 1.0, "avg = {avg}");
    }

    #[test]
    fn targets_roughly_uniform() {
        // Chi-square-ish sanity: bucket in-degrees over 8 buckets; no bucket
        // should deviate wildly from the mean.
        let edges = UniformBuilder::new(4_096, 8).seed(11).build_edges();
        let mut buckets = [0usize; 8];
        for &(_, v) in &edges {
            buckets[(v as usize) / 512] += 1;
        }
        let mean = edges.len() / 8;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (b as f64) > mean as f64 * 0.8 && (b as f64) < mean as f64 * 1.2,
                "bucket {i} = {b}, mean = {mean}"
            );
        }
    }
}
