//! Synthetic graph generators — the reproduction's stand-in for the GTgraph
//! suite the paper uses (Bader & Madduri, 2006).
//!
//! Four families, covering every workload in the paper's evaluation:
//!
//! * [`uniform::UniformBuilder`] — "uniformly random graphs": `n` vertices
//!   each with out-degree `d`, neighbours chosen uniformly at random
//!   (§IV, Figs. 6 and 8).
//! * [`rmat::RmatBuilder`] — R-MAT scale-free graphs with community
//!   structure, sampled from a Kronecker product with the GTgraph default
//!   parameters `(a, b, c, d) = (0.45, 0.15, 0.15, 0.25)` overridable to the
//!   Graph500 `(0.57, 0.19, 0.19, 0.05)` (§IV, Figs. 7 and 9).
//! * [`ssca2::Ssca2Builder`] — SSCA#2-style clustered graphs (cliques plus
//!   sparse inter-clique links), the workload behind Fig. 10 and the
//!   Bader–Madduri MTA-2 rows of Table III.
//! * [`grid::GridBuilder`] — 2-D grids with 4/8/16-neighbour stencils,
//!   matching the Xia–Prasanna rows of Table III.
//!
//! All generators are deterministic given a seed, independent of thread
//! count (parallel generation derives one RNG per output chunk from the
//! master seed), and emit edge lists convertible to [`CsrGraph`] directly
//! through [`GraphBuilder::build`].

pub mod grid;
pub mod rmat;
pub mod ssca2;
pub mod stats;
pub mod synthetic;
pub mod uniform;

use mcbfs_graph::csr::{CsrGraph, VertexId};

/// Edge count above which [`GraphBuilder::build`] assembles the CSR
/// structure with the parallel (rayon) constructors. Below it, the serial
/// path wins: spawning and synchronizing workers costs more than the
/// build itself, and tiny graphs are the common case in tests.
pub const PARALLEL_BUILD_EDGE_THRESHOLD: usize = 1 << 15;

/// Common interface of every generator: produce an edge list or a finished
/// CSR graph.
pub trait GraphBuilder {
    /// Number of vertices the generated graph will have.
    fn num_vertices(&self) -> usize;

    /// Generates the (directed) edge list.
    fn build_edges(&self) -> Vec<(VertexId, VertexId)>;

    /// `true` if [`GraphBuilder::build`] should insert each edge in both
    /// directions (the paper's graphs are all undirected).
    fn symmetric(&self) -> bool {
        true
    }

    /// Generates the graph and assembles the CSR structure — in parallel
    /// above [`PARALLEL_BUILD_EDGE_THRESHOLD`] generated edges (identical
    /// output either way; the large generator runs were dominated by the
    /// serial CSR assembly, not by sampling).
    fn build(&self) -> CsrGraph {
        let edges = self.build_edges();
        let parallel = edges.len() >= PARALLEL_BUILD_EDGE_THRESHOLD;
        match (self.symmetric(), parallel) {
            (true, true) => CsrGraph::from_edges_symmetric_parallel(self.num_vertices(), &edges),
            (true, false) => CsrGraph::from_edges_symmetric(self.num_vertices(), &edges),
            (false, true) => CsrGraph::from_edges_parallel(self.num_vertices(), &edges),
            (false, false) => CsrGraph::from_edges(self.num_vertices(), &edges),
        }
    }
}

/// Commonly used generator types.
pub mod prelude {
    pub use crate::grid::GridBuilder;
    pub use crate::rmat::RmatBuilder;
    pub use crate::ssca2::Ssca2Builder;
    pub use crate::synthetic::{Shape, SyntheticBuilder};
    pub use crate::uniform::UniformBuilder;
    pub use crate::GraphBuilder;
}
