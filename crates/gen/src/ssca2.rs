//! SSCA#2-style clustered graphs.
//!
//! The SSCA#2 benchmark (HPCS Scalable Synthetic Compact Applications,
//! graph analysis) generates a collection of fully-connected *cliques* of
//! random size, linked by sparse inter-clique edges whose density falls off
//! with clique distance. GTgraph ships this generator and the paper uses
//! SSCA#2-like workloads for the multi-instance throughput experiment
//! (Fig. 10) and cites Bader–Madduri MTA-2 results on SSCA#2 v1 graphs in
//! Table III.
//!
//! This implementation follows the GTgraph structure: clique sizes uniform
//! in `1..=max_clique_size`, all intra-clique edges present, and
//! inter-clique edges inserted between cliques at exponentially growing
//! distances (1, 2, 4, …) with probability `prob_interclique` per vertex.

use crate::GraphBuilder;
use mcbfs_graph::csr::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builder for SSCA#2-style graphs.
///
/// # Examples
///
/// ```
/// use mcbfs_gen::prelude::*;
///
/// let g = Ssca2Builder::new(2_000).max_clique_size(16).seed(4).build();
/// assert_eq!(g.num_vertices(), 2_000);
/// assert!(g.num_edges() > 2_000); // cliques dominate
/// ```
#[derive(Clone, Debug)]
pub struct Ssca2Builder {
    n: usize,
    max_clique_size: usize,
    prob_interclique: f64,
    seed: u64,
}

impl Ssca2Builder {
    /// An SSCA#2 graph over `n` vertices with GTgraph-like defaults
    /// (`max_clique_size = 32`, `prob_interclique = 0.5`).
    pub fn new(n: usize) -> Self {
        Self {
            n,
            max_clique_size: 32,
            prob_interclique: 0.5,
            seed: 0x55CA2,
        }
    }

    /// Sets the maximum clique size (minimum 1).
    pub fn max_clique_size(mut self, s: usize) -> Self {
        self.max_clique_size = s.max(1);
        self
    }

    /// Sets the per-vertex inter-clique link probability in `[0, 1]`.
    pub fn prob_interclique(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.prob_interclique = p;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Splits `0..n` into clique ranges with sizes uniform in
    /// `1..=max_clique_size` (last clique truncated).
    fn cliques(&self, rng: &mut SmallRng) -> Vec<core::ops::Range<usize>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < self.n {
            let size = rng.gen_range(1..=self.max_clique_size).min(self.n - start);
            out.push(start..start + size);
            start += size;
        }
        out
    }
}

impl GraphBuilder for Ssca2Builder {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn build_edges(&self) -> Vec<(VertexId, VertexId)> {
        if self.n == 0 {
            return Vec::new();
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let cliques = self.cliques(&mut rng);
        let mut edges = Vec::new();
        // Intra-clique: complete (one direction; the builder mirrors).
        for c in &cliques {
            for u in c.clone() {
                for v in (u + 1)..c.end {
                    edges.push((u as VertexId, v as VertexId));
                }
            }
        }
        // Inter-clique: for each clique i link to cliques i + 1, i + 2,
        // i + 4, ... with probability prob_interclique per step, choosing a
        // random vertex from each side.
        for (i, c) in cliques.iter().enumerate() {
            let mut step = 1usize;
            while i + step < cliques.len() {
                if rng.gen::<f64>() < self.prob_interclique {
                    let d = &cliques[i + step];
                    let u = rng.gen_range(c.clone());
                    let v = rng.gen_range(d.clone());
                    edges.push((u as VertexId, v as VertexId));
                }
                step <<= 1;
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcbfs_graph::validate::sequential_levels;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Ssca2Builder::new(500).seed(1).build_edges();
        let b = Ssca2Builder::new(500).seed(1).build_edges();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_vertices() {
        assert!(Ssca2Builder::new(0).build_edges().is_empty());
    }

    #[test]
    fn endpoints_in_range() {
        let e = Ssca2Builder::new(300).seed(9).build_edges();
        assert!(e
            .iter()
            .all(|&(u, v)| (u as usize) < 300 && (v as usize) < 300));
    }

    #[test]
    fn cliques_are_complete() {
        // With interclique probability 0, components are exactly cliques:
        // every vertex's neighbourhood (plus itself) equals its component.
        let g = Ssca2Builder::new(200)
            .max_clique_size(8)
            .prob_interclique(0.0)
            .seed(3)
            .build();
        for v in 0..200u32 {
            let neigh = g.neighbors(v);
            for &w in neigh {
                // Clique: w's adjacency contains all of v's except w itself.
                assert!(g.has_edge(w, v));
                for &x in neigh {
                    if x != w {
                        assert!(g.has_edge(w, x), "v={v} w={w} x={x}");
                    }
                }
            }
        }
    }

    #[test]
    fn interclique_links_improve_connectivity() {
        let sparse = Ssca2Builder::new(400).prob_interclique(0.0).seed(5).build();
        let linked = Ssca2Builder::new(400).prob_interclique(1.0).seed(5).build();
        let reach = |g: &mcbfs_graph::csr::CsrGraph| {
            sequential_levels(g, 0)
                .iter()
                .filter(|&&l| l != u32::MAX)
                .count()
        };
        assert!(reach(&linked) > reach(&sparse));
    }

    #[test]
    fn max_clique_size_one_gives_matching_structure() {
        // Cliques of size 1 have no intra-clique edges; all edges are
        // inter-clique.
        let g = Ssca2Builder::new(100)
            .max_clique_size(1)
            .prob_interclique(1.0)
            .seed(2)
            .build();
        // Every vertex connects to ~log2(100) later cliques plus mirror
        // edges; degree stays small.
        assert!(g.max_degree() <= 2 * 8);
    }

    #[test]
    fn clique_partition_tiles_vertex_range() {
        let b = Ssca2Builder::new(777).max_clique_size(13).seed(8);
        let mut rng = SmallRng::seed_from_u64(8);
        let cliques = b.cliques(&mut rng);
        let mut cursor = 0;
        for c in &cliques {
            assert_eq!(c.start, cursor);
            assert!(!c.is_empty());
            assert!(c.len() <= 13);
            cursor = c.end;
        }
        assert_eq!(cursor, 777);
    }
}
