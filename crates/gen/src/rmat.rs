//! R-MAT (Recursive MATrix) scale-free graph generator.
//!
//! R-MAT (Chakrabarti, Zhan, Faloutsos 2004) samples each edge by
//! recursively descending into one of the four quadrants of the adjacency
//! matrix with probabilities `(a, b, c, d)`; with `a` dominant the result is
//! a power-law degree distribution with community structure — "a few high
//! degree vertices and many low-degree ones", which the paper credits for
//! R-MAT's *higher* processing rates than uniform graphs (large frontiers
//! amortize per-level costs).
//!
//! GTgraph's default parameters are `(0.45, 0.15, 0.15, 0.25)`; the
//! Graph500 values `(0.57, 0.19, 0.19, 0.05)` are also provided. As in
//! GTgraph, the quadrant probabilities are perturbed by ±10% noise at every
//! level of the recursion to avoid exact self-similarity artifacts.

use crate::GraphBuilder;
use mcbfs_graph::csr::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Quadrant probabilities of the R-MAT recursion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant (both endpoints in the lower
    /// half of the id space). Dominant `a` ⇒ heavier skew.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
}

impl RmatParams {
    /// GTgraph's default R-MAT parameters.
    pub const GTGRAPH: Self = Self {
        a: 0.45,
        b: 0.15,
        c: 0.15,
        d: 0.25,
    };

    /// The Graph500 benchmark parameters.
    pub const GRAPH500: Self = Self {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// Validates that the four probabilities are non-negative and sum to 1
    /// (within floating-point tolerance).
    pub fn is_valid(&self) -> bool {
        let sum = self.a + self.b + self.c + self.d;
        (sum - 1.0).abs() < 1e-9 && self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0
    }
}

/// Builder for R-MAT graphs with `2^scale` vertices and
/// `avg_degree * 2^scale` generated edges.
///
/// # Examples
///
/// ```
/// use mcbfs_gen::prelude::*;
///
/// let g = RmatBuilder::new(10, 8).seed(1).build();
/// assert_eq!(g.num_vertices(), 1024);
/// // Scale-free: the hubs dominate.
/// assert!(g.max_degree() > 3 * 16);
/// ```
#[derive(Clone, Debug)]
pub struct RmatBuilder {
    scale: u32,
    avg_degree: usize,
    params: RmatParams,
    seed: u64,
    noise: f64,
    symmetric: bool,
    permute: bool,
}

impl RmatBuilder {
    /// R-MAT graph with `2^scale` vertices and average generated out-degree
    /// `avg_degree`, GTgraph default parameters.
    pub fn new(scale: u32, avg_degree: usize) -> Self {
        assert!(scale < 32, "scale must stay within 32-bit vertex ids");
        Self {
            scale,
            avg_degree,
            params: RmatParams::GTGRAPH,
            seed: 0xBADCAB,
            noise: 0.1,
            symmetric: true,
            permute: false,
        }
    }

    /// Sets the quadrant probabilities.
    ///
    /// # Panics
    /// Panics when the parameters do not form a probability distribution.
    pub fn params(mut self, params: RmatParams) -> Self {
        assert!(
            params.is_valid(),
            "R-MAT parameters must sum to 1: {params:?}"
        );
        self.params = params;
        self
    }

    /// Sets the RNG seed (default `0xBADCAB`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-level multiplicative noise amplitude on the parameters
    /// (default 0.1, GTgraph-style; 0 disables).
    pub fn noise(mut self, noise: f64) -> Self {
        assert!((0.0..0.5).contains(&noise));
        self.noise = noise;
        self
    }

    /// Chooses directed (`false`) vs. mirrored undirected (`true`, default)
    /// edge insertion.
    pub fn undirected(mut self, yes: bool) -> Self {
        self.symmetric = yes;
        self
    }

    /// Applies a deterministic random relabeling of the vertex ids (an
    /// affine bijection mod 2^scale), as the Graph500 benchmark mandates:
    /// without it the R-MAT recursion concentrates edges on low ids, which
    /// creates artificial locality and skews block partitions.
    pub fn permute(mut self, yes: bool) -> Self {
        self.permute = yes;
        self
    }

    /// The affine bijection used by [`RmatBuilder::permute`]:
    /// `v ↦ (a·v + c) mod 2^scale` with odd `a` derived from the seed.
    #[inline]
    fn relabel(&self, v: VertexId) -> VertexId {
        let mask = (1u64 << self.scale) - 1;
        let a = (self.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1) & mask;
        let c = self.seed.wrapping_mul(0xD1B54A32D192ED03) & mask;
        (((v as u64).wrapping_mul(a).wrapping_add(c)) & mask) as VertexId
    }

    /// Number of directed edges the generator will emit.
    pub fn num_generated_edges(&self) -> usize {
        self.avg_degree << self.scale
    }

    fn sample_edge(&self, rng: &mut SmallRng) -> (VertexId, VertexId) {
        let mut u = 0u64;
        let mut v = 0u64;
        for _level in 0..self.scale {
            // Perturb the quadrant probabilities at every level.
            let jitter = |p: f64, rng: &mut SmallRng| {
                p * (1.0 + self.noise * (rng.gen::<f64>() * 2.0 - 1.0))
            };
            let a = jitter(self.params.a, rng);
            let b = jitter(self.params.b, rng);
            let c = jitter(self.params.c, rng);
            let d = jitter(self.params.d, rng);
            let total = a + b + c + d;
            let r = rng.gen::<f64>() * total;
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        (u as VertexId, v as VertexId)
    }
}

impl GraphBuilder for RmatBuilder {
    fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    fn symmetric(&self) -> bool {
        self.symmetric
    }

    fn build_edges(&self) -> Vec<(VertexId, VertexId)> {
        let m = self.num_generated_edges();
        if m == 0 || self.scale == 0 {
            return Vec::new();
        }
        const CHUNK: usize = 1 << 15;
        let chunks: Vec<usize> = (0..m).step_by(CHUNK).collect();
        chunks
            .par_iter()
            .flat_map_iter(|&start| {
                let len = CHUNK.min(m - start);
                let mut rng = SmallRng::seed_from_u64(
                    self.seed ^ (start as u64).wrapping_mul(0xD1B54A32D192ED03),
                );
                let this = self.clone();
                (0..len).map(move |_| {
                    let (u, v) = this.sample_edge(&mut rng);
                    if this.permute {
                        (this.relabel(u), this.relabel(v))
                    } else {
                        (u, v)
                    }
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = RmatBuilder::new(8, 4).seed(3).build_edges();
        let b = RmatBuilder::new(8, 4).seed(3).build_edges();
        assert_eq!(a, b);
    }

    #[test]
    fn edge_count_matches() {
        let e = RmatBuilder::new(9, 6).build_edges();
        assert_eq!(e.len(), 6 * 512);
    }

    #[test]
    fn endpoints_in_range() {
        let e = RmatBuilder::new(7, 8).seed(2).build_edges();
        assert!(e
            .iter()
            .all(|&(u, v)| (u as usize) < 128 && (v as usize) < 128));
    }

    #[test]
    fn gtgraph_and_graph500_params_valid() {
        assert!(RmatParams::GTGRAPH.is_valid());
        assert!(RmatParams::GRAPH500.is_valid());
        assert!(!RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5
        }
        .is_valid());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_params_rejected() {
        let _ = RmatBuilder::new(4, 2).params(RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.0,
            d: 0.0,
        });
    }

    #[test]
    fn skewed_degree_distribution() {
        // With Graph500 parameters the max degree should far exceed the
        // average — the defining property of the family.
        let g = RmatBuilder::new(12, 8)
            .params(RmatParams::GRAPH500)
            .seed(5)
            .build();
        let stats = degree_stats(&g);
        assert!(
            stats.max as f64 > 10.0 * stats.mean,
            "max {} vs mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn rmat_skews_low_ids() {
        // Quadrant `a` dominant ⇒ low vertex ids receive more edges.
        let e = RmatBuilder::new(10, 8).seed(7).build_edges();
        let low = e.iter().filter(|&&(u, _)| u < 512).count();
        assert!(
            low as f64 > 0.55 * e.len() as f64,
            "low-half sources: {low} of {}",
            e.len()
        );
    }

    #[test]
    fn permutation_preserves_degree_distribution() {
        let plain = RmatBuilder::new(10, 6).seed(5).build();
        let perm = RmatBuilder::new(10, 6).seed(5).permute(true).build();
        let mut d1: Vec<usize> = (0..1024u32).map(|v| plain.degree(v)).collect();
        let mut d2: Vec<usize> = (0..1024u32).map(|v| perm.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2, "relabeling must be a bijection");
        assert_eq!(plain.num_edges(), perm.num_edges());
    }

    #[test]
    fn permutation_balances_blocks() {
        // After relabeling, the low half of the id space no longer hoards
        // the edges.
        let e = RmatBuilder::new(12, 8).seed(7).permute(true).build_edges();
        let low = e.iter().filter(|&&(u, _)| u < 2048).count();
        let frac = low as f64 / e.len() as f64;
        assert!((0.4..0.6).contains(&frac), "low-half fraction {frac}");
    }

    #[test]
    fn relabel_is_bijective() {
        let b = RmatBuilder::new(8, 1).seed(3);
        let mut seen = std::collections::HashSet::new();
        for v in 0..256u32 {
            assert!(seen.insert(b.relabel(v)), "collision at {v}");
            assert!((b.relabel(v) as usize) < 256);
        }
    }

    #[test]
    fn zero_scale_yields_empty() {
        assert!(RmatBuilder::new(0, 8).build_edges().is_empty());
    }

    #[test]
    fn noise_zero_is_supported() {
        let e = RmatBuilder::new(6, 4).noise(0.0).seed(1).build_edges();
        assert_eq!(e.len(), 4 * 64);
    }
}
