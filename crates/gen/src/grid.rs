//! 2-D grid graphs with 4/8/16-neighbour stencils.
//!
//! Xia and Prasanna (PDCS'09) — the closest prior commodity-processor work
//! in the paper's Table III — evaluate on "8-Grid" (1 M vertices, 16 M
//! edges) and "16-Grid" (1 M vertices, 32 M edges) inputs: square lattices
//! where every cell links to its 8 or 16 nearest neighbours. Grids are the
//! high-diameter antithesis of the power-law families: tiny frontiers,
//! thousands of BFS levels, and hence a stress test for per-level overhead.

use crate::GraphBuilder;
use mcbfs_graph::csr::VertexId;

/// Stencil shapes for [`GridBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stencil {
    /// Von Neumann neighbourhood: N, S, E, W.
    Four,
    /// Moore neighbourhood: the 8 cells at Chebyshev distance 1.
    Eight,
    /// The 8-neighbourhood plus the 8 cells at (±2, 0), (0, ±2), (±2, ±2) —
    /// 16 neighbours total, matching the edge count of the 16-Grid inputs
    /// (2× the 8-grid's).
    Sixteen,
}

impl Stencil {
    /// Relative coordinates of the stencil.
    pub fn offsets(self) -> &'static [(i64, i64)] {
        match self {
            Stencil::Four => &[(0, 1), (0, -1), (1, 0), (-1, 0)],
            Stencil::Eight => &[
                (0, 1),
                (0, -1),
                (1, 0),
                (-1, 0),
                (1, 1),
                (1, -1),
                (-1, 1),
                (-1, -1),
            ],
            Stencil::Sixteen => &[
                (0, 1),
                (0, -1),
                (1, 0),
                (-1, 0),
                (1, 1),
                (1, -1),
                (-1, 1),
                (-1, -1),
                (0, 2),
                (0, -2),
                (2, 0),
                (-2, 0),
                (2, 2),
                (2, -2),
                (-2, 2),
                (-2, -2),
            ],
        }
    }
}

/// Builder for `side × side` grid graphs.
///
/// # Examples
///
/// ```
/// use mcbfs_gen::grid::{GridBuilder, Stencil};
/// use mcbfs_gen::GraphBuilder;
///
/// let g = GridBuilder::new(32, Stencil::Eight).build();
/// assert_eq!(g.num_vertices(), 1024);
/// // Interior cells have degree 8.
/// assert_eq!(g.degree(33), 8);
/// // The corner has 3 Moore neighbours.
/// assert_eq!(g.degree(0), 3);
/// ```
#[derive(Clone, Debug)]
pub struct GridBuilder {
    side: usize,
    stencil: Stencil,
}

impl GridBuilder {
    /// A `side × side` grid with the given stencil.
    pub fn new(side: usize, stencil: Stencil) -> Self {
        assert!(
            side.checked_mul(side).map(|n| (n as u64) < u32::MAX as u64) == Some(true),
            "grid too large for 32-bit ids"
        );
        Self { side, stencil }
    }

    /// Side length of the grid.
    pub fn side(&self) -> usize {
        self.side
    }

    #[inline]
    fn id(&self, r: usize, c: usize) -> VertexId {
        (r * self.side + c) as VertexId
    }
}

impl GraphBuilder for GridBuilder {
    fn num_vertices(&self) -> usize {
        self.side * self.side
    }

    /// Grid edges are emitted once per unordered pair and mirrored by the
    /// symmetric build.
    fn build_edges(&self) -> Vec<(VertexId, VertexId)> {
        let side = self.side as i64;
        let mut edges = Vec::new();
        for r in 0..side {
            for c in 0..side {
                for &(dr, dc) in self.stencil.offsets() {
                    let (nr, nc) = (r + dr, c + dc);
                    if nr < 0 || nc < 0 || nr >= side || nc >= side {
                        continue;
                    }
                    // Emit each undirected edge once (lexicographic owner).
                    if (nr, nc) > (r, c) {
                        edges.push((
                            self.id(r as usize, c as usize),
                            self.id(nr as usize, nc as usize),
                        ));
                    }
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcbfs_graph::validate::sequential_levels;

    #[test]
    fn four_grid_structure() {
        let g = GridBuilder::new(3, Stencil::Four).build();
        assert_eq!(g.num_vertices(), 9);
        // Center vertex (1,1) = id 4 touches all four sides.
        assert_eq!(g.neighbors(4), &[1, 3, 5, 7]);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn eight_grid_interior_degree() {
        let g = GridBuilder::new(5, Stencil::Eight).build();
        assert_eq!(g.degree(12), 8); // (2,2) interior
        assert_eq!(g.degree(0), 3); // corner
        assert_eq!(g.degree(2), 5); // edge midpoint
    }

    #[test]
    fn sixteen_grid_interior_degree() {
        let g = GridBuilder::new(7, Stencil::Sixteen).build();
        // (3,3) = id 24 is ≥2 away from every border.
        assert_eq!(g.degree(24), 16);
    }

    #[test]
    fn edge_counts_match_xia_prasanna_ratio() {
        // 16-grid ≈ 2 × 8-grid edges (border effects aside).
        let g8 = GridBuilder::new(64, Stencil::Eight).build();
        let g16 = GridBuilder::new(64, Stencil::Sixteen).build();
        let ratio = g16.num_edges() as f64 / g8.num_edges() as f64;
        assert!((ratio - 2.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn grid_is_connected_with_quadratic_diameter() {
        let g = GridBuilder::new(20, Stencil::Four).build();
        let levels = sequential_levels(&g, 0);
        assert!(levels.iter().all(|&l| l != u32::MAX));
        // Diameter from the corner is exactly 2 * (side - 1) hops.
        assert_eq!(*levels.iter().max().unwrap(), 38);
    }

    #[test]
    fn degenerate_grids() {
        let g = GridBuilder::new(0, Stencil::Eight).build();
        assert_eq!(g.num_vertices(), 0);
        let g = GridBuilder::new(1, Stencil::Sixteen).build();
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn symmetric_by_construction() {
        let g = GridBuilder::new(6, Stencil::Eight).build();
        for (u, v) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }
}
