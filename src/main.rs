//! `mcbfs` — command-line front end to the multicore-bfs library.
//!
//! ```text
//! mcbfs generate --kind rmat --scale 18 --degree 8 --out g.csr
//! mcbfs bfs --graph g.csr --root 0 --threads 4 --algorithm multi:2
//! mcbfs kernel --graph g.csr --searches 16 --threads 4 [--batched]
//! mcbfs query --graph g.csr --sources sources.txt --batch 64
//! mcbfs components --graph g.csr
//! mcbfs stcon --graph g.csr --source 0 --target 99
//! mcbfs serve --graph g.csr --addr 127.0.0.1:7411 --max-batch 64
//! mcbfs loadgen --addr 127.0.0.1:7411 --rate 500 --duration-s 5
//! mcbfs partition --graph g.csr --shards 4
//! mcbfs shard --shard g.shard0of4.csr --addr 127.0.0.1:7501
//! mcbfs router --workers 127.0.0.1:7501,127.0.0.1:7502 --addr 127.0.0.1:7411
//! mcbfs model --machine ex --graph g.csr --threads 64
//! mcbfs calibrate
//! ```

use multicore_bfs::core::algo::hybrid::ForcedDirection;
use multicore_bfs::core::components::connected_components;
use multicore_bfs::core::kernel::run_kernel;
use multicore_bfs::core::runner::{Algorithm, BfsRunner, ExecMode, DEFAULT_REORDER_SEED};
use multicore_bfs::core::stcon::{st_connectivity, StConReport, StConnectivity};
use multicore_bfs::gen::grid::{GridBuilder, Stencil};
use multicore_bfs::gen::prelude::*;
use multicore_bfs::gen::stats::{degree_stats, locality_stats};
use multicore_bfs::graph::csr::CsrGraph;
use multicore_bfs::graph::io;
use multicore_bfs::graph::reorder::Reorder;
use multicore_bfs::graph::shard::{shard_file_name, CsrShard};
use multicore_bfs::machine::calibrate::{calibrate_host, CalibrationEffort};
use multicore_bfs::machine::model::MachineModel;
use multicore_bfs::prelude::validate_bfs_tree;
use multicore_bfs::query::{batch_stats, run_batched_kernel, Query, QueryEngine};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::exit;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage("");
    };
    let opts = parse_flags(args.collect());
    match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "bfs" => cmd_bfs(&opts),
        "info" => cmd_info(&opts),
        "kernel" => cmd_kernel(&opts),
        "query" => cmd_query(&opts),
        "components" => cmd_components(&opts),
        "stcon" => cmd_stcon(&opts),
        "serve" => cmd_serve(&opts),
        "loadgen" => cmd_loadgen(&opts),
        "partition" => cmd_partition(&opts),
        "shard" => cmd_shard(&opts),
        "router" => cmd_router(&opts),
        "model" => cmd_model(&opts),
        "calibrate" => cmd_calibrate(&opts),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown command {other:?}")),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: mcbfs <command> [flags]\n\
         commands:\n\
         \x20 generate    --kind uniform|rmat|ssca2|grid --scale N | --vertices N\n\
         \x20             [--degree D] [--seed S] [--permute]\n\
         \x20             [--reorder none|degree|bfs|random] --out PATH\n\
         \x20 bfs         --graph PATH [--root R] [--threads T]\n\
         \x20             [--algorithm seq|simple|single|multi:S|hybrid[:auto|td|bu|alt]]\n\
         \x20             [--mode native|model] [--machine ep|ex]\n\
         \x20             [--reorder none|degree|bfs|random] [--reorder-seed S]\n\
         \x20             [--trace FILE.json] [--metrics FILE.jsonl] [--stats-json FILE]\n\
         \x20 info        --graph PATH\n\
         \x20 kernel      --graph PATH [--searches K] [--threads T] [--seed S]\n\
         \x20             [--batched] [--batch B]\n\
         \x20 query       --graph PATH --sources FILE [--batch B] [--threads T]\n\
         \x20             [--sockets S] [--mode native|model] [--machine ep|ex]\n\
         \x20             [--shards N] (offline sharded engine; with --mode model\n\
         \x20             the exchange volume predicts a live N-shard cluster)\n\
         \x20             [--trace FILE.json] [--metrics FILE.jsonl] [--stats-json FILE]\n\
         \x20 query       --addr HOST:PORT --sources FILE [--batch B]\n\
         \x20             [--deadline-ms D] [--stats-json FILE]  (remote client)\n\
         \x20 components  --graph PATH [--threads T]\n\
         \x20 stcon       --graph PATH --source S --target T [--stats-json FILE]\n\
         \x20             (exit code 1 when disconnected)\n\
         \x20 serve       --graph PATH [--addr HOST:PORT] [--threads T] [--sockets S]\n\
         \x20             [--max-batch B] [--max-wait-us U] [--queue-cap Q]\n\
         \x20             [--deadline-ms D] [--stats-json FILE]\n\
         \x20             (SIGINT drains in-flight waves, then exits)\n\
         \x20 loadgen     --addr HOST:PORT [--rate QPS | --closed-loop]\n\
         \x20             [--connections C] [--duration-s S] [--seed S]\n\
         \x20             [--deadline-ms D] [--slo-ms L] [--smoke] [--stats-json FILE]\n\
         \x20 partition   --graph PATH --shards N [--out PATH]\n\
         \x20             (writes PATH-derived *.shardKofN.csr slice files)\n\
         \x20 shard       --shard PATH.shardKofN.csr [--addr HOST:PORT]\n\
         \x20             (one shard worker; speaks swire-v1 to its router)\n\
         \x20 router      --workers HOST:PORT,HOST:PORT,... [--addr HOST:PORT]\n\
         \x20             [--max-batch B] [--max-wait-us U] [--queue-cap Q]\n\
         \x20             [--deadline-ms D] [--stats-json FILE]\n\
         \x20             (wire-v1 front over shard workers; SIGINT drains)\n\
         \x20 model       --graph PATH --machine ep|ex [--threads T]\n\
         \x20             [--reorder none|degree|bfs|random] [--reorder-seed S]\n\
         \x20             [--trace FILE.json] [--metrics FILE.jsonl] [--stats-json FILE]\n\
         \x20 calibrate   [--thorough]"
    );
    exit(if err.is_empty() { 0 } else { 2 });
}

fn parse_flags(raw: Vec<String>) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = raw.into_iter().peekable();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            usage(&format!("expected a --flag, got {flag:?}"));
        };
        // Boolean flags: next token is another flag or absent.
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap(),
            _ => "true".to_string(),
        };
        out.insert(name.to_string(), value);
    }
    out
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    match opts.get(key) {
        Some(raw) => raw
            .parse()
            .unwrap_or_else(|_| usage(&format!("bad --{key} {raw:?}"))),
        None => default,
    }
}

fn require(opts: &HashMap<String, String>, key: &str) -> String {
    opts.get(key)
        .cloned()
        .unwrap_or_else(|| usage(&format!("missing --{key}")))
}

fn parse_machine(name: &str) -> MachineModel {
    match name {
        "ep" => MachineModel::nehalem_ep(),
        "ex" => MachineModel::nehalem_ex(),
        other => usage(&format!("unknown --machine {other:?} (ep|ex)")),
    }
}

fn write_text_file(path: &str, contents: &str) {
    std::fs::write(path, contents).unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
}

/// Handles `--trace` / `--metrics` for any run that may carry a trace.
fn write_trace_exports(
    opts: &HashMap<String, String>,
    trace: Option<&multicore_bfs::trace::Trace>,
) {
    if !(opts.contains_key("trace") || opts.contains_key("metrics")) {
        return;
    }
    let Some(trace) = trace else {
        usage("--trace/--metrics need the `trace` cargo feature (rebuild with default features)")
    };
    if let Some(path) = opts.get("trace") {
        write_text_file(path, &multicore_bfs::trace::to_chrome_json(trace));
        println!(
            "wrote Chrome trace {path}: {} events across {} threads",
            trace.event_count(),
            trace.threads.len()
        );
    }
    if let Some(path) = opts.get("metrics") {
        write_text_file(path, &multicore_bfs::trace::to_jsonl(trace));
        println!(
            "wrote metrics JSONL {path}: {} level spans",
            trace.level_span_count()
        );
    }
}

/// Handles `--trace`, `--metrics` and `--stats-json` for a finished run.
fn write_exports(opts: &HashMap<String, String>, result: &multicore_bfs::core::BfsResult) {
    write_trace_exports(opts, result.trace.as_ref());
    if let Some(path) = opts.get("stats-json") {
        let json = serde_json::to_string_pretty(&result.stats).expect("serialize stats");
        write_text_file(path, &json);
        println!("wrote stats JSON {path}");
    }
}

fn load_graph(opts: &HashMap<String, String>) -> CsrGraph {
    load_graph_tagged(opts).0
}

fn load_graph_tagged(opts: &HashMap<String, String>) -> (CsrGraph, Reorder) {
    let path = require(opts, "graph");
    let file = File::open(&path).unwrap_or_else(|e| usage(&format!("cannot open {path}: {e}")));
    io::read_csr_tagged(&mut BufReader::new(file))
        .unwrap_or_else(|e| usage(&format!("cannot parse {path}: {e}")))
}

fn parse_reorder(opts: &HashMap<String, String>) -> Reorder {
    match opts.get("reorder") {
        None => Reorder::None,
        Some(spec) => Reorder::parse(spec)
            .unwrap_or_else(|| usage(&format!("bad --reorder {spec:?} (none|degree|bfs|random)"))),
    }
}

fn cmd_generate(opts: &HashMap<String, String>) {
    let kind = get(opts, "kind", "rmat".to_string());
    let seed: u64 = get(opts, "seed", 42u64);
    let degree: usize = get(opts, "degree", 8usize);
    let graph = match kind.as_str() {
        "uniform" => {
            let n: usize = get(opts, "vertices", 1usize << get(opts, "scale", 16u32));
            UniformBuilder::new(n, degree).seed(seed).build()
        }
        "rmat" => {
            let scale: u32 = get(opts, "scale", 16u32);
            RmatBuilder::new(scale, degree)
                .seed(seed)
                .permute(opts.contains_key("permute"))
                .build()
        }
        "ssca2" => {
            let n: usize = get(opts, "vertices", 1usize << get(opts, "scale", 16u32));
            Ssca2Builder::new(n).seed(seed).build()
        }
        "grid" => {
            let side: usize = get(opts, "side", 512usize);
            GridBuilder::new(side, Stencil::Eight).build()
        }
        other => usage(&format!("unknown --kind {other:?}")),
    };
    // Optional cache-locality relabelling, recorded in the file header so
    // the saved graph is self-describing (`mcbfs info` surfaces it).
    let reorder = parse_reorder(opts);
    let graph = match reorder.permutation(&graph, get(opts, "reorder-seed", DEFAULT_REORDER_SEED)) {
        None => graph,
        Some(permutation) => graph.permute(&permutation),
    };
    let out = require(opts, "out");
    let f = File::create(&out).unwrap_or_else(|e| usage(&format!("cannot create {out}: {e}")));
    io::write_csr_tagged(&mut BufWriter::new(f), &graph, reorder).expect("serialize graph");
    println!(
        "wrote {}: {} vertices, {} edges, max degree {}, ordering {}",
        out,
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree(),
        reorder
    );
}

fn parse_algorithm(spec: &str) -> Algorithm {
    match spec {
        "seq" | "sequential" => Algorithm::Sequential,
        "simple" | "alg1" => Algorithm::Simple,
        "single" | "alg2" => Algorithm::SingleSocket,
        "hybrid" => Algorithm::hybrid(),
        other => {
            if let Some(s) = other.strip_prefix("multi:") {
                let sockets = s
                    .parse()
                    .unwrap_or_else(|_| usage(&format!("bad socket count {s:?}")));
                Algorithm::MultiSocket { sockets }
            } else if let Some(p) = other.strip_prefix("hybrid:") {
                let policy = match p {
                    "auto" => ForcedDirection::Auto,
                    "td" | "top-down" => ForcedDirection::TopDown,
                    "bu" | "bottom-up" => ForcedDirection::BottomUp,
                    "alt" | "alternate" => ForcedDirection::Alternate,
                    bad => usage(&format!("bad hybrid policy {bad:?} (auto|td|bu|alt)")),
                };
                Algorithm::Hybrid { policy }
            } else {
                usage(&format!("unknown --algorithm {other:?}"))
            }
        }
    }
}

fn cmd_bfs(opts: &HashMap<String, String>) {
    let graph = load_graph(opts);
    let root: u32 = get(opts, "root", 0u32);
    let threads: usize = get(opts, "threads", 1usize);
    let algorithm = parse_algorithm(&get(opts, "algorithm", "single".to_string()));
    let mode_name = get(opts, "mode", "native".to_string());
    let mode = match mode_name.as_str() {
        "native" => ExecMode::Native,
        "model" => ExecMode::model(parse_machine(&get(opts, "machine", "ex".to_string()))),
        other => usage(&format!("unknown --mode {other:?} (native|model)")),
    };
    let traced = opts.contains_key("trace") || opts.contains_key("metrics");
    let reorder = parse_reorder(opts);
    let result = BfsRunner::new(&graph)
        .algorithm(algorithm)
        .threads(threads)
        .mode(mode)
        .traced(traced)
        .reorder(reorder)
        .reorder_seed(get(opts, "reorder-seed", DEFAULT_REORDER_SEED))
        .run(root);
    validate_bfs_tree(&graph, root, &result.parents)
        .unwrap_or_else(|e| usage(&format!("produced invalid tree: {e}")));
    let s = &result.stats;
    let reorder_note = if reorder == Reorder::None {
        String::new()
    } else {
        format!(" [reorder={reorder}, results in original ids]")
    };
    println!(
        "[{}] visited {} of {} vertices in {} levels; {:.3} ms; {:.1} ME/s ({} edges){}",
        mode_name,
        s.vertices_visited,
        graph.num_vertices(),
        s.levels,
        s.seconds * 1e3,
        s.me_per_s(),
        s.edges_traversed,
        reorder_note
    );
    write_exports(opts, &result);
    if matches!(algorithm, Algorithm::Hybrid { .. }) {
        let skipped = result.profile.total().edges_skipped;
        println!(
            "directions: {} ({} edges skipped by bottom-up early exit)",
            result.profile.direction_string(),
            skipped
        );
    }
}

/// `mcbfs info`: structural, degree and cache-locality facts of a saved
/// graph, including the vertex ordering recorded in its header. Shard
/// files (from `mcbfs partition`) get their shard metadata instead.
fn cmd_info(opts: &HashMap<String, String>) {
    let path = require(opts, "graph");
    let mut magic = [0u8; 4];
    {
        use std::io::Read;
        let mut f =
            File::open(&path).unwrap_or_else(|e| usage(&format!("cannot open {path}: {e}")));
        f.read_exact(&mut magic)
            .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    }
    if &magic == io::SHARD_MAGIC {
        let file = File::open(&path).unwrap_or_else(|e| usage(&format!("cannot open {path}: {e}")));
        let shard = io::read_shard(&mut BufReader::new(file))
            .unwrap_or_else(|e| usage(&format!("cannot parse {path}: {e}")));
        let range = shard.owned_range();
        println!(
            "{}: shard {} of {} over a {}-vertex graph",
            path,
            shard.index(),
            shard.shards(),
            shard.num_vertices()
        );
        println!(
            "  owns [{}, {}): {} vertices, {} local edges",
            range.start,
            range.end,
            shard.owned_len(),
            shard.local_edges()
        );
        println!(
            "  cut edges: {} ({:.1}% of local edges leave the shard)",
            shard.cut_edges(),
            1e2 * shard.cut_edges() as f64 / shard.local_edges().max(1) as f64
        );
        return;
    }
    let (graph, reorder) = load_graph_tagged(opts);
    println!(
        "{}: {} vertices, {} directed edges, {:.1} MB",
        path,
        graph.num_vertices(),
        graph.num_edges(),
        graph.memory_bytes() as f64 / (1 << 20) as f64
    );
    println!("  vertex ordering: {reorder}");
    let d = degree_stats(&graph);
    println!(
        "  degree: min {} / mean {:.2} / max {}; std dev {:.2}; gini {:.3}; {} isolated",
        d.min, d.mean, d.max, d.std_dev, d.gini, d.isolated
    );
    let l = locality_stats(&graph);
    println!(
        "  locality: mean neighbor ID-gap {:.1}, mean adjacency span {:.1}, max gap {}",
        l.mean_neighbor_gap, l.mean_adjacency_span, l.max_neighbor_gap
    );
}

fn cmd_kernel(opts: &HashMap<String, String>) {
    let graph = load_graph(opts);
    let searches: usize = get(opts, "searches", 16usize);
    let threads: usize = get(opts, "threads", 1usize);
    let seed: u64 = get(opts, "seed", 1u64);
    let algorithm = parse_algorithm(&get(opts, "algorithm", "single".to_string()));
    let stats = run_kernel(&graph, algorithm, threads, ExecMode::Native, searches, seed);
    println!(
        "{} searches: harmonic mean {:.2} MTEPS, min {:.2}, median {:.2}, max {:.2}",
        stats.searches,
        stats.harmonic_mean_teps / 1e6,
        stats.quantile(0.0) / 1e6,
        stats.median() / 1e6,
        stats.quantile(1.0) / 1e6,
    );
    if opts.contains_key("batched") {
        let batch: usize = get(opts, "batch", 64usize);
        let r = run_batched_kernel(
            &graph,
            algorithm,
            threads,
            ExecMode::Native,
            searches,
            seed,
            batch,
        );
        println!(
            "batched (same {} roots, {} wave{} of <={}): sequential loop {:.2} MTEPS \
             ({:.3} ms), batched {:.2} MTEPS ({:.3} ms), speedup {:.2}x",
            r.roots.len(),
            r.waves,
            if r.waves == 1 { "" } else { "s" },
            batch,
            r.sequential_teps() / 1e6,
            r.sequential_seconds * 1e3,
            r.batched_teps() / 1e6,
            r.batched_seconds * 1e3,
            r.speedup()
        );
    }
}

/// Reads whitespace/newline-separated vertex ids from a file.
fn read_sources(path: &str, n: usize) -> Vec<u32> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    let sources: Vec<u32> = text
        .split_whitespace()
        .map(|tok| {
            tok.parse()
                .unwrap_or_else(|_| usage(&format!("bad vertex id {tok:?} in {path}")))
        })
        .collect();
    if sources.is_empty() {
        usage(&format!("{path} contains no vertex ids"));
    }
    if let Some(&bad) = sources.iter().find(|&&s| s as usize >= n) {
        usage(&format!(
            "source {bad} out of range (graph has {n} vertices)"
        ));
    }
    sources
}

fn cmd_query(opts: &HashMap<String, String>) {
    if opts.contains_key("addr") {
        return cmd_query_remote(opts);
    }
    let graph = load_graph(opts);
    let sources = read_sources(&require(opts, "sources"), graph.num_vertices());
    let batch: usize = get(opts, "batch", 64usize);
    if opts.contains_key("shards") {
        return cmd_query_sharded(opts, &graph, &sources, batch);
    }
    let threads: usize = get(opts, "threads", 1usize);
    let sockets: usize = get(opts, "sockets", 1usize);
    let mode_name = get(opts, "mode", "native".to_string());
    let mode = match mode_name.as_str() {
        "native" => ExecMode::Native,
        "model" => ExecMode::model(parse_machine(&get(opts, "machine", "ex".to_string()))),
        other => usage(&format!("unknown --mode {other:?} (native|model)")),
    };
    let queries: Vec<Query> = sources
        .iter()
        .map(|&root| Query::Distances { root })
        .collect();
    let report = QueryEngine::new(&graph)
        .threads(threads)
        .max_batch(batch)
        .sockets(sockets)
        .mode(mode)
        .traced(opts.contains_key("trace") || opts.contains_key("metrics"))
        .execute(&queries);
    let stats = batch_stats(&report, batch, threads, sockets, &mode_name);
    println!(
        "[{}] {} queries in {} wave{}: {:.3} ms makespan, {:.2} aggregate MTEPS, \
         latency p50 {:.3} ms / p99 {:.3} ms",
        mode_name,
        stats.queries,
        stats.waves,
        if stats.waves == 1 { "" } else { "s" },
        stats.seconds * 1e3,
        stats.aggregate_teps / 1e6,
        stats.p50_latency_ms,
        stats.p99_latency_ms
    );
    for w in &report.waves {
        println!(
            "  wave {}: {} queries, {} levels, {:.3} ms, {} edges{}",
            w.wave,
            w.queries,
            w.levels,
            w.seconds * 1e3,
            w.edges,
            if w.fallback { " (fallback)" } else { "" }
        );
    }
    write_trace_exports(opts, report.trace.as_ref());
    if let Some(path) = opts.get("stats-json") {
        let json = serde_json::to_string_pretty(&stats).expect("serialize stats");
        write_text_file(path, &json);
        println!("wrote stats JSON {path}");
    }
}

/// `--stats-json` payload of `mcbfs query --shards N`: the usual batch
/// stats plus the per-level shard-exchange ledger (in model mode this is
/// the byte-exact prediction of a live N-shard cluster's traffic).
#[derive(serde::Serialize)]
struct ShardedQueryStats {
    shards: u64,
    stats: multicore_bfs::query::BatchStats,
    exchange: multicore_bfs::shard::ExchangeLog,
}

/// `mcbfs query --shards N`: run the batch through the in-process
/// sharded engine — the same level-synchronous exchange protocol the
/// live router/worker cluster speaks, minus the sockets.
fn cmd_query_sharded(
    opts: &HashMap<String, String>,
    graph: &CsrGraph,
    sources: &[u32],
    batch: usize,
) {
    use multicore_bfs::shard::ShardedEngine;
    let shards: usize = get(opts, "shards", 1usize);
    if shards == 0 {
        usage("--shards must be at least 1");
    }
    let mode_name = get(opts, "mode", "native".to_string());
    let mut engine = ShardedEngine::new(graph, shards).max_batch(batch);
    match mode_name.as_str() {
        "native" => {}
        "model" => {
            engine = engine.model(parse_machine(&get(opts, "machine", "ex".to_string())));
        }
        other => usage(&format!("unknown --mode {other:?} (native|model)")),
    }
    let queries: Vec<Query> = sources
        .iter()
        .map(|&root| Query::Distances { root })
        .collect();
    let report = engine.execute(&queries);
    let stats = batch_stats(&report, batch, 1, 1, &mode_name);
    let exchange = engine.exchange_log();
    println!(
        "[{}] {} queries in {} wave{} over {} shard slices: {:.3} ms makespan, \
         {:.2} aggregate MTEPS, latency p50 {:.3} ms / p99 {:.3} ms",
        mode_name,
        stats.queries,
        stats.waves,
        if stats.waves == 1 { "" } else { "s" },
        shards,
        stats.seconds * 1e3,
        stats.aggregate_teps / 1e6,
        stats.p50_latency_ms,
        stats.p99_latency_ms
    );
    for w in &report.waves {
        println!(
            "  wave {}: {} queries, {} levels, {:.3} ms, {} edges",
            w.wave,
            w.queries,
            w.levels,
            w.seconds * 1e3,
            w.edges
        );
    }
    println!(
        "  exchange: {} frames, {} bytes, {} items over {} level rounds",
        exchange.total_frames(),
        exchange.total_bytes(),
        exchange.total_items(),
        exchange.levels.len()
    );
    if let Some(path) = opts.get("stats-json") {
        let payload = ShardedQueryStats {
            shards: shards as u64,
            stats,
            exchange,
        };
        let json = serde_json::to_string_pretty(&payload).expect("serialize stats");
        write_text_file(path, &json);
        println!("wrote stats JSON {path}");
    }
}

/// `--stats-json` payload of `mcbfs query --addr`.
#[derive(serde::Serialize)]
struct RemoteQueryStats {
    submitted: u64,
    served: u64,
    rejected: u64,
    timeouts: u64,
    errors: u64,
    seconds: f64,
    edges: u64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
}

/// `mcbfs query --addr`: drive a live wire-v1 server (single-process
/// `mcbfs serve` or a sharded `mcbfs router` — the protocol is the same)
/// with one distances query per source, pipelined on one connection.
fn cmd_query_remote(opts: &HashMap<String, String>) {
    use multicore_bfs::query::nearest_rank_quantile;
    use multicore_bfs::serve::wire;
    use multicore_bfs::serve::{Request, Response};
    use std::io::{BufRead, Write};
    let addr = require(opts, "addr");
    let deadline_ms: f64 = get(opts, "deadline-ms", -1.0f64);
    let stream = std::net::TcpStream::connect(&addr)
        .unwrap_or_else(|e| usage(&format!("cannot connect to {addr}: {e}")));
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .unwrap_or_else(|e| usage(&format!("cannot clone connection: {e}")));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    // Handshake: the stats reply carries the graph shape, which bounds
    // the source ids exactly as the local path does.
    writer
        .write_all(wire::encode(&Request::Stats { tag: u64::MAX }).as_bytes())
        .unwrap_or_else(|e| usage(&format!("handshake write failed: {e}")));
    reader
        .read_line(&mut line)
        .unwrap_or_else(|e| usage(&format!("handshake read failed: {e}")));
    let n = match wire::decode::<Response>(&line) {
        Ok(Response::Stats { stats, .. }) => stats.vertices as usize,
        Ok(other) => usage(&format!("unexpected handshake reply: {other:?}")),
        Err(e) => usage(&format!("bad handshake reply: {e}")),
    };
    let sources = read_sources(&require(opts, "sources"), n);

    let start = std::time::Instant::now();
    for (tag, &root) in sources.iter().enumerate() {
        let request = Request::Query {
            tag: tag as u64,
            query: Query::Distances { root },
            deadline_ms: (deadline_ms > 0.0).then_some(deadline_ms),
        };
        writer
            .write_all(wire::encode(&request).as_bytes())
            .unwrap_or_else(|e| usage(&format!("query write failed: {e}")));
    }
    writer
        .flush()
        .unwrap_or_else(|e| usage(&format!("query write failed: {e}")));

    let (mut served, mut rejected, mut timeouts, mut errors) = (0u64, 0u64, 0u64, 0u64);
    let mut edges = 0u64;
    let mut latencies = Vec::new();
    let mut remaining = sources.len();
    while remaining > 0 {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => usage("server closed the connection mid-batch"),
            Ok(_) => {}
            Err(e) => usage(&format!("reply read failed: {e}")),
        }
        if line.trim().is_empty() {
            continue;
        }
        match wire::decode::<Response>(&line) {
            Ok(Response::Ok(reply)) => {
                served += 1;
                edges += reply.edges;
                latencies.push(reply.latency_ms);
                remaining -= 1;
            }
            Ok(Response::Rejected { .. }) => {
                rejected += 1;
                remaining -= 1;
            }
            Ok(Response::Timeout { .. }) => {
                timeouts += 1;
                remaining -= 1;
            }
            Ok(Response::Error { .. }) => {
                errors += 1;
                remaining -= 1;
            }
            // Stray pong/stats replies are not part of this batch.
            Ok(_) => {}
            Err(e) => usage(&format!("bad server frame: {e}")),
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    let p50 = nearest_rank_quantile(&latencies, 0.50);
    let p99 = nearest_rank_quantile(&latencies, 0.99);
    println!(
        "[remote {addr}] {} queries in {:.3} ms: {} served / {} rejected / \
         {} timeout / {} error; {:.2} aggregate MTEPS, latency p50 {:.3} ms / p99 {:.3} ms",
        sources.len(),
        seconds * 1e3,
        served,
        rejected,
        timeouts,
        errors,
        if seconds > 0.0 {
            edges as f64 / seconds / 1e6
        } else {
            0.0
        },
        p50,
        p99
    );
    if let Some(path) = opts.get("stats-json") {
        let payload = RemoteQueryStats {
            submitted: sources.len() as u64,
            served,
            rejected,
            timeouts,
            errors,
            seconds,
            edges,
            p50_latency_ms: p50,
            p99_latency_ms: p99,
        };
        let json = serde_json::to_string_pretty(&payload).expect("serialize stats");
        write_text_file(path, &json);
        println!("wrote stats JSON {path}");
    }
}

fn cmd_components(opts: &HashMap<String, String>) {
    let graph = load_graph(opts);
    let threads: usize = get(opts, "threads", 1usize);
    let c = connected_components(&graph, threads, 4_096);
    println!("{} components; largest {} vertices", c.count(), c.largest());
    for (root, size) in c.sizes.iter().take(5) {
        println!("  root {root}: {size}");
    }
}

fn cmd_stcon(opts: &HashMap<String, String>) {
    let graph = load_graph(opts);
    let s: u32 = get(opts, "source", 0u32);
    let t: u32 = get(opts, "target", 0u32);
    let start = std::time::Instant::now();
    let result = st_connectivity(&graph, s, t);
    let seconds = start.elapsed().as_secs_f64();
    if let Some(path) = opts.get("stats-json") {
        let report = StConReport::new(s, t, &result, seconds);
        let json = serde_json::to_string_pretty(&report).expect("serialize stats");
        write_text_file(path, &json);
        println!("wrote stats JSON {path}");
    }
    match result {
        StConnectivity::Connected { path, explored } => {
            println!(
                "connected: {} hops ({explored} vertices explored, {:.3} ms)",
                path.len() - 1,
                seconds * 1e3
            );
            if path.len() <= 20 {
                println!("  path: {path:?}");
            }
        }
        StConnectivity::Disconnected { explored } => {
            println!(
                "disconnected (explored {explored} vertices, {:.3} ms)",
                seconds * 1e3
            );
            // Scriptability: a missing path is a distinguishable exit code.
            exit(1);
        }
    }
}

/// `mcbfs serve`: run the wire-v1 query server until SIGINT, then drain.
fn cmd_serve(opts: &HashMap<String, String>) {
    use multicore_bfs::serve::{arm_sigint, serve, ServeOpts, ShutdownHandle};
    let graph = load_graph(opts);
    let deadline_s: f64 = get(opts, "deadline-ms", -1.0f64) / 1e3;
    let serve_opts = ServeOpts {
        addr: get(opts, "addr", "127.0.0.1:7411".to_string()),
        threads: get(opts, "threads", 0usize),
        sockets: get(opts, "sockets", 1usize),
        max_batch: get(opts, "max-batch", 64usize),
        max_wait: std::time::Duration::from_micros(get(opts, "max-wait-us", 2_000u64)),
        queue_cap: get(opts, "queue-cap", 256usize),
        default_deadline: (deadline_s > 0.0)
            .then(|| std::time::Duration::from_secs_f64(deadline_s)),
    };
    arm_sigint();
    let shutdown = ShutdownHandle::new();
    let stats = serve(&graph, &serve_opts, &shutdown, |addr| {
        println!(
            "mcbfs-serve (wire-v1) listening on {addr}: {} vertices, {} edges, \
             max_batch {}, max_wait {:?}, queue_cap {}",
            graph.num_vertices(),
            graph.num_edges(),
            serve_opts.max_batch,
            serve_opts.max_wait,
            serve_opts.queue_cap
        );
    })
    .unwrap_or_else(|e| usage(&format!("serve failed: {e}")));
    println!(
        "drained and stopped after {:.1}s: {} admitted, {} served, {} shed, \
         {} timeouts, {} errors, {} protocol errors, {} waves, p99 {:.3} ms",
        stats.uptime_seconds,
        stats.admitted,
        stats.served,
        stats.shed,
        stats.timeouts,
        stats.errors,
        stats.protocol_errors,
        stats.waves,
        stats.p99_latency_ms
    );
    if let Some(path) = opts.get("stats-json") {
        let json = serde_json::to_string_pretty(&stats).expect("serialize stats");
        write_text_file(path, &json);
        println!("wrote stats JSON {path}");
    }
}

/// `mcbfs loadgen`: drive a live server and report latency/throughput.
fn cmd_loadgen(opts: &HashMap<String, String>) {
    use multicore_bfs::serve::{loadgen, LoadgenOpts};
    let smoke = opts.contains_key("smoke");
    let closed = opts.contains_key("closed-loop");
    let deadline_ms: f64 = get(opts, "deadline-ms", -1.0f64);
    let lopts = LoadgenOpts {
        addr: get(opts, "addr", "127.0.0.1:7411".to_string()),
        connections: get(opts, "connections", if smoke { 2 } else { 4 }),
        duration: std::time::Duration::from_secs_f64(get(
            opts,
            "duration-s",
            if smoke { 1.5f64 } else { 5.0 },
        )),
        rate: if closed {
            None
        } else {
            Some(get(opts, "rate", if smoke { 300.0f64 } else { 500.0 }))
        },
        seed: get(opts, "seed", 1u64),
        deadline_ms: (deadline_ms > 0.0).then_some(deadline_ms),
        slo_ms: get(opts, "slo-ms", 50.0f64),
        grace: std::time::Duration::from_secs_f64(get(opts, "grace-s", 10.0f64)),
    };
    let report = loadgen::run(&lopts).unwrap_or_else(|e| usage(&format!("loadgen failed: {e}")));
    println!(
        "{} loop vs {}: offered {:.0} qps for {:.1}s",
        if lopts.rate.is_some() {
            "open"
        } else {
            "closed"
        },
        lopts.addr,
        report.offered_qps,
        report.seconds
    );
    println!(
        "  submitted {} -> served {} / shed {} / timeout {} / error {} / unresolved {}",
        report.submitted,
        report.served,
        report.shed,
        report.timeouts,
        report.errors,
        report.unresolved
    );
    println!(
        "  achieved {:.1} qps, goodput {:.1} qps, {:.2} aggregate MTEPS",
        report.achieved_qps,
        report.goodput_qps,
        report.aggregate_teps / 1e6
    );
    println!(
        "  latency p50 {:.3} / p99 {:.3} / p999 {:.3} ms; SLO {:.1} ms attainment {:.1}%",
        report.p50_latency_ms,
        report.p99_latency_ms,
        report.p999_latency_ms,
        report.slo_ms,
        report.slo_attainment * 1e2
    );
    if let Some(path) = opts.get("stats-json") {
        let json = serde_json::to_string_pretty(&report).expect("serialize report");
        write_text_file(path, &json);
        println!("wrote stats JSON {path}");
    }
}

/// `mcbfs partition`: cut a saved CSR into N contiguous vertex-range
/// shard files that `mcbfs shard` workers load.
fn cmd_partition(opts: &HashMap<String, String>) {
    let graph = load_graph(opts);
    let shards: usize = get(opts, "shards", 0usize);
    if shards == 0 {
        usage("--shards must be at least 1");
    }
    let base = opts
        .get("out")
        .cloned()
        .unwrap_or_else(|| require(opts, "graph"));
    let mut cut_total = 0usize;
    for index in 0..shards {
        let shard = CsrShard::cut(&graph, shards, index);
        let path = shard_file_name(&base, index, shards);
        let f =
            File::create(&path).unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        io::write_shard(&mut BufWriter::new(f), &shard).expect("serialize shard");
        cut_total += shard.cut_edges();
        println!(
            "wrote {}: owns [{}, {}) ({} vertices), {} local edges ({} cut)",
            path,
            shard.owned_range().start,
            shard.owned_range().end,
            shard.owned_len(),
            shard.local_edges(),
            shard.cut_edges()
        );
    }
    println!(
        "partitioned {} vertices, {} edges into {} shards; {:.1}% of edges cross shards",
        graph.num_vertices(),
        graph.num_edges(),
        shards,
        1e2 * cut_total as f64 / graph.num_edges().max(1) as f64
    );
}

/// `mcbfs shard`: run one shard worker until SIGINT. The worker owns a
/// vertex range and answers its router over swire-v1; clients never
/// connect here.
fn cmd_shard(opts: &HashMap<String, String>) {
    use multicore_bfs::serve::{arm_sigint, ShutdownHandle};
    use multicore_bfs::shard::run_worker;
    let path = require(opts, "shard");
    let file = File::open(&path).unwrap_or_else(|e| usage(&format!("cannot open {path}: {e}")));
    let shard = io::read_shard(&mut BufReader::new(file))
        .unwrap_or_else(|e| usage(&format!("cannot parse {path}: {e}")));
    let addr = get(opts, "addr", "127.0.0.1:7501".to_string());
    arm_sigint();
    let shutdown = ShutdownHandle::new();
    let stats = run_worker(&shard, &addr, &shutdown, |bound| {
        println!(
            "mcbfs-shard (swire-v1) listening on {bound}: shard {} of {}, \
             owns [{}, {}) of {} vertices, {} local edges ({} cut)",
            shard.index(),
            shard.shards(),
            shard.owned_range().start,
            shard.owned_range().end,
            shard.num_vertices(),
            shard.local_edges(),
            shard.cut_edges()
        );
    })
    .unwrap_or_else(|e| usage(&format!("shard worker failed: {e}")));
    println!(
        "drained and stopped after {:.1}s: {} router connections",
        stats.uptime_seconds, stats.connections
    );
}

/// `--stats-json` payload of `mcbfs router`: the merged cluster stats
/// plus the per-level shard-exchange ledger observed on the live links.
#[derive(serde::Serialize)]
struct RouterStats {
    stats: multicore_bfs::serve::ServerStats,
    exchange: multicore_bfs::shard::ExchangeLog,
}

/// `mcbfs router`: the scatter/gather front — wire-v1 to clients,
/// swire-v1 to the shard workers listed in `--workers`. SIGINT drains
/// in-flight waves and then reports the merged cluster stats.
fn cmd_router(opts: &HashMap<String, String>) {
    use multicore_bfs::serve::{arm_sigint, serve_with, ServeOpts, ShutdownHandle};
    use multicore_bfs::shard::Router;
    let workers: Vec<String> = require(opts, "workers")
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if workers.is_empty() {
        usage("--workers needs at least one HOST:PORT");
    }
    let router = Router::connect(&workers)
        .unwrap_or_else(|e| usage(&format!("cannot connect to shard workers: {e}")));
    let deadline_s: f64 = get(opts, "deadline-ms", -1.0f64) / 1e3;
    let serve_opts = ServeOpts {
        addr: get(opts, "addr", "127.0.0.1:7411".to_string()),
        threads: 0,
        sockets: 1,
        max_batch: get(opts, "max-batch", 64usize),
        max_wait: std::time::Duration::from_micros(get(opts, "max-wait-us", 2_000u64)),
        queue_cap: get(opts, "queue-cap", 256usize),
        default_deadline: (deadline_s > 0.0)
            .then(|| std::time::Duration::from_secs_f64(deadline_s)),
    };
    arm_sigint();
    let shutdown = ShutdownHandle::new();
    let (vertices, edges, shards) = (
        router.num_vertices(),
        router.num_edges(),
        router.num_shards(),
    );
    let stats = serve_with(&router, vertices, edges, &serve_opts, &shutdown, |addr| {
        println!(
            "mcbfs-router (wire-v1) listening on {addr}: {vertices} vertices, {edges} edges \
             over {shards} shard workers, max_batch {}, max_wait {:?}, queue_cap {}",
            serve_opts.max_batch, serve_opts.max_wait, serve_opts.queue_cap
        );
    })
    .unwrap_or_else(|e| usage(&format!("router failed: {e}")));
    let exchange = router.exchange_log();
    println!(
        "drained and stopped after {:.1}s: {} admitted, {} served, {} shed, \
         {} timeouts, {} errors, {} protocol errors, {} waves, p99 {:.3} ms",
        stats.uptime_seconds,
        stats.admitted,
        stats.served,
        stats.shed,
        stats.timeouts,
        stats.errors,
        stats.protocol_errors,
        stats.waves,
        stats.p99_latency_ms
    );
    println!(
        "  exchange: {} frames, {} bytes, {} items over {} level rounds",
        exchange.total_frames(),
        exchange.total_bytes(),
        exchange.total_items(),
        exchange.levels.len()
    );
    if let Some(path) = opts.get("stats-json") {
        let payload = RouterStats { stats, exchange };
        let json = serde_json::to_string_pretty(&payload).expect("serialize stats");
        write_text_file(path, &json);
        println!("wrote stats JSON {path}");
    }
}

fn cmd_model(opts: &HashMap<String, String>) {
    let graph = load_graph(opts);
    let model = parse_machine(&get(opts, "machine", "ex".to_string()));
    let threads: usize = get(opts, "threads", model.spec.total_threads());
    let sockets = model.spec.sockets_used(threads);
    let algorithm = if sockets > 1 {
        Algorithm::MultiSocket { sockets }
    } else {
        Algorithm::SingleSocket
    };
    let traced = opts.contains_key("trace") || opts.contains_key("metrics");
    let result = BfsRunner::new(&graph)
        .algorithm(algorithm)
        .threads(threads)
        .mode(ExecMode::model(model.clone()))
        .traced(traced)
        .reorder(parse_reorder(opts))
        .reorder_seed(get(opts, "reorder-seed", DEFAULT_REORDER_SEED))
        .run(get(opts, "root", 0u32));
    println!(
        "{} @ {} threads ({} sockets): predicted {:.3} ms, {:.1} ME/s",
        model.spec.name,
        threads,
        sockets,
        result.stats.seconds * 1e3,
        result.stats.me_per_s()
    );
    write_exports(opts, &result);
}

fn cmd_calibrate(opts: &HashMap<String, String>) {
    let effort = if opts.contains_key("thorough") {
        CalibrationEffort::Thorough
    } else {
        CalibrationEffort::Quick
    };
    println!("calibrating this host ({effort:?}) ...");
    let report = calibrate_host(effort);
    for (bytes, ns) in &report.latency_points {
        println!(
            "  {:>10} B working set: {:>8.1} ns/dependent read",
            bytes, ns
        );
    }
    println!(
        "  pipelining gain (batch 16 vs 1): {:.1}x",
        report.pipelining_gain
    );
    println!("  fetch_add: {:.1} ns", report.atomic_ns);
    println!(
        "fitted params: L1 {:.1} / L2 {:.1} / L3 {:.1} / mem {:.1} ns, efficiency {:.2}",
        report.params.lat_l1_ns,
        report.params.lat_l2_ns,
        report.params.lat_l3_ns,
        report.params.lat_mem_ns,
        report.params.pipeline_efficiency
    );
}
