//! # multicore-bfs
//!
//! A from-scratch Rust reproduction of *Scalable Graph Exploration on
//! Multicore Processors* (Agarwal, Petrini, Pasetto, Bader — SC 2010): a
//! scalable level-synchronous breadth-first search for multicore
//! shared-memory machines, with an innovative hierarchy-of-working-sets data
//! layout, test-then-set atomic avoidance, and batched lock-protected
//! FastForward channels for inter-socket communication.
//!
//! This facade crate re-exports the full public API of the workspace:
//!
//! * [`sync`] — ticket locks, FastForward SPSC queues, batched socket
//!   channels, spin barriers, pinned worker pools;
//! * [`graph`] — CSR graphs, atomic visited bitmaps, per-socket partitions,
//!   BFS-tree validation;
//! * [`gen`] — uniform-random, R-MAT, SSCA#2 and grid generators
//!   (GTgraph-equivalent);
//! * [`machine`] — machine topology presets (Nehalem EP/EX), the
//!   memory-hierarchy cost model used to reproduce the paper's scalability
//!   figures on arbitrary hosts, and the published-results reference data;
//! * [`core`] — the BFS algorithms themselves (Algorithms 1, 2, 3 of the
//!   paper plus ablations), instrumentation, and the native/modelled
//!   executors;
//! * [`query`] — the batched query engine: bit-parallel multi-source BFS
//!   waves serving heterogeneous queries (trees, distances,
//!   st-connectivity, reachability) with admission batching and
//!   latency/aggregate-TEPS serving statistics;
//! * [`serve`] — the networked serving front-end: `mcbfs-wire-v1` TCP
//!   protocol, deadline-aware continuous batching with bounded-queue load
//!   shedding, graceful drain on SIGINT, and the open/closed-loop load
//!   generator behind `mcbfs serve` / `mcbfs loadgen`;
//! * [`shard`] — sharded multi-worker serving: 1D vertex-range CSR
//!   shards, per-shard worker processes, the scatter/gather router that
//!   speaks `mcbfs-wire-v1` to clients and `mcbfs-swire-v1` to workers,
//!   and the in-process [`shard::ShardedEngine`] whose model mode
//!   predicts the live cluster's exchange volume byte-exactly;
//! * [`trace`] — the low-overhead per-thread event recorder behind
//!   `BfsRunner::traced`, with Chrome-trace JSON and flat JSONL exporters
//!   (compiled to no-ops without the `trace` cargo feature).
//!
//! ## Quickstart
//!
//! ```
//! use multicore_bfs::prelude::*;
//!
//! // 2^14 vertices, average degree 8, R-MAT (scale-free) structure.
//! let graph = RmatBuilder::new(14, 8).seed(42).build();
//! let result = BfsRunner::new(&graph)
//!     .algorithm(Algorithm::MultiSocket { sockets: 2 })
//!     .threads(4)
//!     .run(0);
//! assert!(result.stats.edges_traversed > 0);
//! assert!(validate_bfs_tree(&graph, 0, result.parents.as_slice()).is_ok());
//! ```

pub use mcbfs_core as core;
pub use mcbfs_gen as gen;
pub use mcbfs_graph as graph;
pub use mcbfs_machine as machine;
pub use mcbfs_query as query;
pub use mcbfs_serve as serve;
pub use mcbfs_shard as shard;
pub use mcbfs_sync as sync;
pub use mcbfs_trace as trace;

/// Commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use mcbfs_core::instrument::BfsStats;
    pub use mcbfs_core::runner::{Algorithm, BfsResult, BfsRunner};
    pub use mcbfs_gen::prelude::*;
    pub use mcbfs_graph::bitmap::AtomicBitmap;
    pub use mcbfs_graph::csr::CsrGraph;
    pub use mcbfs_graph::partition::VertexPartition;
    pub use mcbfs_graph::validate::validate_bfs_tree;
    pub use mcbfs_machine::model::MachineModel;
    pub use mcbfs_machine::topology::MachineSpec;
    pub use mcbfs_query::engine::{Query, QueryEngine};
}
